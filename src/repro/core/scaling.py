"""Critical-scaling transforms (Eq. 6) at the model-parameter level.

Theorem 1 phrases everything through the deviation ``α_n`` of the edge
probability ``t_{n,q}`` from the critical scaling
``(ln n + (k-1) ln ln n)/n``.  These helpers move between the paper's
parameter tuple and ``α`` in both directions — the forward direction
reads off ``α`` from a concrete network, the backward direction is what
the design API uses to place a network *at* a chosen deviation.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.params import QCompositeParams
from repro.probability.hypergeometric import overlap_survival
from repro.probability.limits import (
    alpha_from_edge_probability,
    critical_edge_probability,
    edge_probability_from_alpha,
)
from repro.exceptions import ParameterError
from repro.utils.validation import check_positive_int

__all__ = [
    "deviation_alpha",
    "channel_prob_for_alpha",
    "critical_scaling",
    "scaling_report",
]


def deviation_alpha(params: QCompositeParams, k: int = 1) -> float:
    """Return ``α_n`` for a concrete parameter tuple (Eq. 6).

    ``α_n = n t_{n,q} - ln n - (k-1) ln ln n`` with
    ``t_{n,q} = p · s(K, P, q)``.
    """
    return alpha_from_edge_probability(
        params.edge_probability(), params.num_nodes, k
    )


def channel_prob_for_alpha(
    num_nodes: int,
    key_ring_size: int,
    pool_size: int,
    q: int,
    alpha: float,
    k: int = 1,
) -> float:
    """Channel probability ``p`` placing the network at deviation ``α``.

    Solves ``p · s(K,P,q) = (ln n + (k-1) ln ln n + α)/n`` for ``p``.
    Raises :class:`ParameterError` when the required ``p`` exceeds 1 —
    i.e. when even perfect channels cannot reach that deviation with the
    given key parameters (the situation Lemma 1's case ➋ handles by
    growing ``K`` instead).
    """
    t_target = edge_probability_from_alpha(alpha, num_nodes, k)
    s = overlap_survival(key_ring_size, pool_size, q)
    if s <= 0.0:
        raise ParameterError("key-graph edge probability is zero; increase K")
    p = t_target / s
    if p > 1.0:
        raise ParameterError(
            f"alpha={alpha} needs channel prob {p:.4g} > 1 at K={key_ring_size}; "
            "increase the key ring size instead"
        )
    if p <= 0.0:
        raise ParameterError(f"alpha={alpha} yields non-positive channel prob {p:.4g}")
    return p


def critical_scaling(num_nodes: int, k: int = 1) -> float:
    """The threshold ``(ln n + (k-1) ln ln n) / n`` itself."""
    return critical_edge_probability(num_nodes, k)


def scaling_report(params: QCompositeParams, k: int = 1) -> Dict[str, float]:
    """Bundle of scaling quantities for one network (harness output)."""
    check_positive_int(k, "k")
    t = params.edge_probability()
    alpha = deviation_alpha(params, k)
    return {
        "edge_probability": t,
        "critical": critical_scaling(params.num_nodes, k),
        "alpha": alpha,
        "mean_degree": params.mean_degree(),
        "log_n": math.log(params.num_nodes),
    }
