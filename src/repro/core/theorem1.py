"""Theorem 1: asymptotically exact k-connectivity probability + zero–one law.

The predictor maps a concrete parameter tuple ``(n, K, P, q, p)`` and a
connectivity order ``k`` to the paper's asymptotic probability

    P[G_{n,q} is k-connected]  →  exp( -e^{-α_n} / (k-1)! )

by computing the deviation ``α_n`` exactly (Eq. 6, using the exact
hypergeometric ``s_{n,q}`` rather than its asymptotic form) and
evaluating the limit law at it.  The regime classifier exposes the
zero–one law view (Eqs. 8a–8c) for design narratives.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Dict

from repro.core.conditions import ConditionReport, check_theorem1_conditions
from repro.core.scaling import deviation_alpha
from repro.params import QCompositeParams
from repro.probability.limits import limit_probability
from repro.utils.validation import check_positive_int

__all__ = [
    "ConnectivityRegime",
    "Theorem1Prediction",
    "predict_k_connectivity",
    "classify_regime",
]


class ConnectivityRegime(enum.Enum):
    """Which clause of the zero–one law a design point falls under.

    At finite ``n`` the classification is by the magnitude of ``α_n``
    relative to ``ln ln n`` (the natural deviation scale appearing in
    the paper's confinement argument): designs within ``±ln ln n`` of
    the threshold are *critical*, far above it *connected whp*, far
    below *disconnected whp*.
    """

    DISCONNECTED_WHP = "disconnected-whp"  # Eq. (8c): alpha -> -inf
    CRITICAL = "critical"  # Eq. (8a): alpha -> alpha*
    CONNECTED_WHP = "connected-whp"  # Eq. (8b): alpha -> +inf


@dataclasses.dataclass(frozen=True)
class Theorem1Prediction:
    """Prediction bundle for one design point."""

    params: QCompositeParams
    k: int
    alpha: float
    probability: float
    regime: ConnectivityRegime
    conditions: ConditionReport

    def to_dict(self) -> Dict[str, object]:
        return {
            "params": self.params.to_dict(),
            "k": self.k,
            "alpha": self.alpha,
            "probability": self.probability,
            "regime": self.regime.value,
            "conditions": self.conditions.to_dict(),
        }


def classify_regime(alpha: float, num_nodes: int) -> ConnectivityRegime:
    """Classify a deviation value against the ``ln ln n`` scale."""
    scale = math.log(max(math.log(max(num_nodes, 3)), math.e))
    if alpha > scale:
        return ConnectivityRegime.CONNECTED_WHP
    if alpha < -scale:
        return ConnectivityRegime.DISCONNECTED_WHP
    return ConnectivityRegime.CRITICAL


def predict_k_connectivity(params: QCompositeParams, k: int = 1) -> Theorem1Prediction:
    """Apply Theorem 1 to a design point.

    Returns the asymptotic probability ``exp(-e^{-α}/(k-1)!)`` together
    with the deviation, regime classification, and the side-condition
    scores callers should inspect before trusting the number at small
    ``n``.
    """
    k = check_positive_int(k, "k")
    alpha = deviation_alpha(params, k)
    return Theorem1Prediction(
        params=params,
        k=k,
        alpha=alpha,
        probability=limit_probability(alpha, k),
        regime=classify_regime(alpha, params.num_nodes),
        conditions=check_theorem1_conditions(params),
    )
