"""Heterogeneous (class-mix) critical scaling and limit law.

Eletreby and Yağan extend the paper's homogeneous model to *classes*:
node ``v`` draws class ``i`` with probability ``μ_i``, receives a key
ring of size ``K_i``, and the on/off channel between a class-``i`` and
a class-``j`` node is on with probability ``α_ij``.  The mean edge
probability seen by a class-``i`` node is then

    λ_i = Σ_j μ_j · α_ij · s(K_i, K_j, P, q)

with ``s`` the cross-ring overlap-survival probability.  The zero–one
law transfers with the *minimum* λ class taking the critical scaling:
when ``λ_min(n) = (ln n + (k-1) ln ln n + α)/n``, the k-connectivity
(and min-degree) probability converges to

    exp( - μ_min · e^{-α} / (k-1)! )

where ``μ_min`` is the weight of the class achieving ``λ_min`` — the
bottleneck nodes are the sparse class's isolated vertices, diluted by
how rare that class is.  These helpers mirror :mod:`repro.core.scaling`
for the class-mix axis: compute the per-class λ vector, place a mix at
a chosen deviation by scaling the whole ``α_ij`` matrix, and evaluate
the heterogeneous limit.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro.exceptions import ParameterError
from repro.probability.hypergeometric import cross_overlap_survival
from repro.probability.limits import edge_probability_from_alpha, limit_probability
from repro.utils.validation import check_probability

__all__ = [
    "class_edge_probabilities",
    "het_channel_scale_for_alpha",
    "het_limit_probability",
]


def _check_mix(
    ring_sizes: Sequence[int],
    mu: Sequence[float],
    channel_probs: Sequence[Sequence[float]],
) -> Tuple[Tuple[int, ...], Tuple[float, ...], Tuple[Tuple[float, ...], ...]]:
    """Normalize and validate one (ring sizes, μ, α matrix) triple."""
    sizes = tuple(int(size) for size in ring_sizes)
    if not sizes:
        raise ParameterError("ring_sizes must be non-empty")
    weights = tuple(float(w) for w in mu)
    if len(weights) != len(sizes):
        raise ParameterError(
            f"mu has {len(weights)} classes but ring_sizes has {len(sizes)}"
        )
    for w in weights:
        check_probability(w, "mu entry")
        if w <= 0.0:
            raise ParameterError(f"mu entries must be positive, got {w}")
    if abs(math.fsum(weights) - 1.0) > 1e-9:
        raise ParameterError(
            f"mu must sum to 1, got {math.fsum(weights)!r}"
        )
    matrix = tuple(tuple(float(a) for a in row) for row in channel_probs)
    if len(matrix) != len(sizes) or any(len(row) != len(sizes) for row in matrix):
        raise ParameterError(
            f"channel_probs must be a {len(sizes)}x{len(sizes)} matrix"
        )
    for i, row in enumerate(matrix):
        for j, a in enumerate(row):
            check_probability(a, "channel_probs entry")
            if a <= 0.0:
                raise ParameterError(
                    f"channel_probs entries must be positive, got {a}"
                )
            if matrix[j][i] != a:
                raise ParameterError("channel_probs must be symmetric")
    return sizes, weights, matrix


def class_edge_probabilities(
    ring_sizes: Sequence[int],
    pool_size: int,
    q: int,
    mu: Sequence[float],
    channel_probs: Sequence[Sequence[float]],
) -> Tuple[float, ...]:
    """Per-class mean edge probabilities ``λ_i = Σ_j μ_j α_ij s(K_i,K_j,P,q)``.

    The returned vector is the heterogeneous analogue of the scalar
    ``p · s(K,P,q)``: entry ``i`` is the probability that a class-``i``
    node links to a uniformly random other node.  Its minimum drives
    the zero–one law.
    """
    sizes, weights, matrix = _check_mix(ring_sizes, mu, channel_probs)
    lambdas = []
    for i, size_i in enumerate(sizes):
        total = 0.0
        for j, size_j in enumerate(sizes):
            survival = cross_overlap_survival(size_i, size_j, pool_size, q)
            total += weights[j] * matrix[i][j] * survival
        lambdas.append(total)
    return tuple(lambdas)


def het_channel_scale_for_alpha(
    num_nodes: int,
    ring_sizes: Sequence[int],
    pool_size: int,
    q: int,
    mu: Sequence[float],
    channel_probs: Sequence[Sequence[float]],
    alpha: float,
    k: int = 1,
) -> float:
    """Scalar ``c`` placing ``c · min_i λ_i`` at deviation ``α``.

    Multiplying the whole ``α_ij`` matrix by ``c`` scales every λ_i by
    ``c`` while preserving the mix shape, so solving
    ``c · λ_min = (ln n + (k-1) ln ln n + α)/n`` pins the bottleneck
    class exactly at the critical scaling.  Raises
    :class:`ParameterError` when the required ``c`` would push any
    matrix entry above 1 — the mix cannot reach that deviation and the
    ring sizes must grow instead (the heterogeneous analogue of
    :func:`repro.core.scaling.channel_prob_for_alpha`'s bound).
    """
    lambdas = class_edge_probabilities(ring_sizes, pool_size, q, mu, channel_probs)
    lam_min = min(lambdas)
    if lam_min <= 0.0:
        raise ParameterError(
            "minimum class edge probability is zero; increase the ring sizes"
        )
    t_target = edge_probability_from_alpha(alpha, num_nodes, k)
    scale = t_target / lam_min
    if scale <= 0.0:
        raise ParameterError(
            f"alpha={alpha} yields non-positive channel scale {scale:.4g}"
        )
    peak = max(max(row) for row in channel_probs)
    if scale * peak > 1.0:
        raise ParameterError(
            f"alpha={alpha} needs channel scale {scale:.4g} pushing the peak "
            f"matrix entry to {scale * peak:.4g} > 1; increase the ring sizes"
        )
    return scale


def het_limit_probability(alpha: float, mu_min: float, k: int = 1) -> float:
    """The heterogeneous limit ``exp(-μ_min e^{-α}/(k-1)!)``.

    ``mu_min`` is the weight of the class achieving the minimum λ.
    Equivalent to shifting the homogeneous law by ``ln μ_min``:
    rarer bottleneck classes contribute fewer isolated nodes, lifting
    the limit probability at the same deviation.
    """
    mu_min = check_probability(mu_min, "mu_min")
    if mu_min <= 0.0:
        raise ParameterError(f"mu_min must be positive, got {mu_min}")
    if math.isnan(alpha):
        raise ParameterError("alpha must not be NaN")
    if math.isinf(alpha):
        return limit_probability(alpha, k)
    return limit_probability(alpha - math.log(mu_min), k)
