"""Lemma 7: the Erdős–Rényi k-connectivity law (Erdős–Rényi 1961).

For ``G(n, z_n)`` with ``z_n = (ln n + (k-1) ln ln n + α_n)/n``,

    lim P[G(n, z_n) is k-connected] = exp(-e^{-lim α_n} / (k-1)!)

This is both a lemma in the paper's proof (applied to the coupled graph
``G(n, z_n)`` of Lemma 3) and the ``q``-free baseline the experiments
compare against: at matched edge probability, the intersection graph
``G_{n,q}`` and the ER graph should exhibit the *same* k-connectivity
probability asymptotically — the substance of Theorem 1.
"""

from __future__ import annotations

from repro.probability.limits import (
    alpha_from_edge_probability,
    limit_probability,
)
from repro.utils.validation import check_positive_int, check_probability

__all__ = ["er_k_connectivity_probability", "er_alpha"]


def er_alpha(num_nodes: int, edge_prob: float, k: int = 1) -> float:
    """Deviation ``α_n`` of an ER graph's edge probability (Lemma 7 form)."""
    return alpha_from_edge_probability(edge_prob, num_nodes, k)


def er_k_connectivity_probability(num_nodes: int, edge_prob: float, k: int = 1) -> float:
    """Asymptotic ``P[G(n, p) is k-connected]`` under Lemma 7."""
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    edge_prob = check_probability(edge_prob, "edge_prob")
    k = check_positive_int(k, "k")
    return limit_probability(er_alpha(num_nodes, edge_prob, k), k)
