"""Typed study results: full per-trial value arrays + estimators.

A :class:`ScenarioResult` keeps the raw value tensor — shape
``(rings, trials, curves, metrics)`` for plain scenarios and
``(sizes, rings, trials, curves, metrics)`` for size-grid scenarios —
rather than pre-aggregated counts.  That is what makes the declarative
layer as expressive as the bespoke loops it replaced: Bernoulli
estimates, means/variances, histograms, agreement rates between two
metrics measured on the *same* deployments, and ratio estimates
(attack compromise fractions) are all cheap post-processing of the
tensor, and saved results can be re-analyzed without re-simulating.

Whether a metric is Bernoulli-estimable is decided by its
:class:`~repro.study.scenario.MetricSpec` (``is_indicator``), never by
inspecting the measured values: a value metric that happens to be
pinned at 0/1 (e.g. ``giant_fraction`` at saturating ``p``) is still a
value metric and renders as mean ± std.  Protocol results carry no
metric specs, so their values fall back to the 0/1 check.

Partial results and merging
---------------------------
A :class:`ScenarioResult` may cover only a *window* of a scenario's
trial axis: ``trial_offset`` records the absolute index of its first
trial, and :meth:`ScenarioResult.merge` concatenates two adjacent
windows (rejecting mismatched scenarios, overlapping ranges, gaps, and
incompatible axis shapes).  Because every ``(size, ring, trial)`` cell
is seeded by its absolute trial index and values are assign-only, a
merge of windows ``[0, b)`` and ``[b, t)`` is bit-for-bit the tensor a
one-shot run at ``t`` trials produces — the substrate both the adaptive
driver (:mod:`repro.study.adaptive`) and sharded multi-host execution
build on.  Cells that a shard did not evaluate hold ``NaN``; the
estimator accessors skip them, so per-cell trial counts may be ragged
(the adaptive driver stops extending converged cells).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ExperimentError, ShardMismatchError
from repro.simulation.estimators import BernoulliEstimate
from repro.study.scenario import Curve, Scenario
from repro.utils.tables import format_table

__all__ = ["ScenarioResult", "StudyResult", "render_study_result"]


def _library_version() -> str:
    # Imported lazily: repro/__init__ must stay importable before its
    # submodules finish loading.
    import repro

    return str(getattr(repro, "__version__", "unknown"))


@dataclasses.dataclass(frozen=True)
class ScenarioResult:
    """All measured values of one scenario.

    For a plain scenario ``values[r, t, c, m]`` is metric ``m`` of
    curve ``c`` measured on deployment ``(ring_sizes[r], trial t)``.
    A size-grid scenario carries the size axis in front:
    ``values[s, r, t, c, m]`` for deployment ``(num_nodes_grid[s],
    ring s/r, trial t)``.  Protocol scenarios use a single pseudo-ring
    and pseudo-curve with one column per protocol value.

    ``trial_offset`` is the absolute trial index of the tensor's first
    trial slot: a full run has offset 0; an extension shard produced by
    :meth:`~repro.study.compiler.Study.run_extension` covering trials
    ``[a, b)`` has offset ``a`` (and ``scenario.trials == b - a``).
    ``NaN`` entries mark cells a shard did not evaluate; estimator
    accessors skip them.
    """

    scenario: Scenario
    values: np.ndarray
    metric_labels: Tuple[str, ...]
    trial_offset: int = 0

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        object.__setattr__(self, "values", values)
        expected = 5 if self.scenario.sized else 4
        shape = (
            "(sizes, rings, trials, curves, metrics)"
            if self.scenario.sized
            else "(rings, trials, curves, metrics)"
        )
        if values.ndim != expected:
            raise ExperimentError(
                f"values must have shape {shape}, got {values.shape}"
            )
        if not isinstance(self.trial_offset, int) or isinstance(
            self.trial_offset, bool
        ) or self.trial_offset < 0:
            raise ExperimentError(
                f"trial_offset must be a non-negative int, got {self.trial_offset!r}"
            )

    # -- trial window --------------------------------------------------

    @property
    def num_trials(self) -> int:
        """Length of the trial axis (slots, including unevaluated NaNs)."""
        return int(self.values.shape[-3])

    @property
    def trial_range(self) -> Tuple[int, int]:
        """Absolute trial window ``[start, stop)`` this result covers."""
        return (self.trial_offset, self.trial_offset + self.num_trials)

    # -- merging -------------------------------------------------------

    def merge(self, other: "ScenarioResult") -> "ScenarioResult":
        """Concatenate an adjacent trial window of the same scenario.

        The two results must describe the same scenario (every field
        except ``trials`` equal — same axes, curves, metrics, channel,
        and seed, so their deployments come from the same deterministic
        stream) and cover abutting trial ranges in either order.
        Overlaps and gaps are rejected: values are assign-only, so an
        overlap would mean the same ``(cell, trial)`` was computed
        twice (a scheduling bug), and a gap would silently misalign
        absolute trial indices against their seeds.
        """
        if not isinstance(other, ScenarioResult):
            raise ExperimentError(
                f"can only merge ScenarioResult, got {type(other).__name__}"
            )
        diffs = [
            field.name
            for field in dataclasses.fields(Scenario)
            if field.name != "trials"
            and getattr(self.scenario, field.name)
            != getattr(other.scenario, field.name)
        ]
        if diffs or self.scenario.content_hash() != other.scenario.content_hash():
            mine = self.scenario.content_hash()[:12]
            theirs = other.scenario.content_hash()[:12]
            raise ShardMismatchError(
                f"cannot merge results of mismatched scenarios "
                f"{self.scenario.name!r} / {other.scenario.name!r}: "
                f"fields {diffs} differ "
                f"(content hashes {mine} vs {theirs})"
            )
        if self.metric_labels != other.metric_labels:
            raise ExperimentError(
                f"cannot merge: metric labels differ "
                f"({self.metric_labels} vs {other.metric_labels})"
            )
        mine = self.values.shape[:-3] + self.values.shape[-2:]
        theirs = other.values.shape[:-3] + other.values.shape[-2:]
        if mine != theirs:
            raise ExperimentError(
                f"cannot merge: axis shapes differ outside the trial axis "
                f"({self.values.shape} vs {other.values.shape})"
            )
        first, second = (
            (self, other) if self.trial_offset <= other.trial_offset else (other, self)
        )
        end = first.trial_offset + first.num_trials
        if second.trial_offset < end:
            raise ExperimentError(
                f"cannot merge overlapping trial ranges {first.trial_range} "
                f"and {second.trial_range} of scenario {self.scenario.name!r}"
            )
        if second.trial_offset > end:
            raise ExperimentError(
                f"cannot merge non-adjacent trial ranges {first.trial_range} "
                f"and {second.trial_range} of scenario {self.scenario.name!r} "
                f"(gap of {second.trial_offset - end} trials)"
            )
        total = first.num_trials + second.num_trials
        return ScenarioResult(
            scenario=self.scenario.with_trials(total),
            values=np.concatenate((first.values, second.values), axis=-3),
            metric_labels=self.metric_labels,
            trial_offset=first.trial_offset,
        )

    def overlay(self, other: "ScenarioResult") -> "ScenarioResult":
        """Fold another shard of the *same* trial window into this one.

        The complement of :meth:`merge`: merge joins disjoint trial
        windows, overlay joins disjoint *cells* of one window.  Size- or
        column-axis shards each evaluate a subset of cells over the full
        window (the rest hold NaN); overlaying them fills each NaN slot
        from whichever shard evaluated it.  Cells both shards evaluated
        must agree bit-for-bit — deployments are seeded by absolute
        trial index, so any disagreement means the shards did not come
        from the same deterministic stream.
        """
        if not isinstance(other, ScenarioResult):
            raise ExperimentError(
                f"can only overlay ScenarioResult, got {type(other).__name__}"
            )
        if (
            self.scenario.content_hash() != other.scenario.content_hash()
            or self.scenario.trials != other.scenario.trials
        ):
            raise ShardMismatchError(
                f"cannot overlay results of mismatched scenarios "
                f"{self.scenario.name!r} / {other.scenario.name!r} "
                f"(content hashes {self.scenario.content_hash()[:12]} vs "
                f"{other.scenario.content_hash()[:12]})"
            )
        if self.metric_labels != other.metric_labels:
            raise ExperimentError(
                f"cannot overlay: metric labels differ "
                f"({self.metric_labels} vs {other.metric_labels})"
            )
        if self.trial_offset != other.trial_offset or (
            self.values.shape != other.values.shape
        ):
            raise ExperimentError(
                f"cannot overlay: trial windows differ "
                f"({self.trial_range} shape {self.values.shape} vs "
                f"{other.trial_range} shape {other.values.shape}); "
                f"use merge() for adjacent windows"
            )
        mine_nan = np.isnan(self.values)
        theirs_nan = np.isnan(other.values)
        both = ~mine_nan & ~theirs_nan
        if both.any() and not np.array_equal(
            self.values[both], other.values[both]
        ):
            raise ExperimentError(
                f"cannot overlay: {int(both.sum())} cells evaluated by both "
                f"shards of scenario {self.scenario.name!r} disagree"
            )
        return ScenarioResult(
            scenario=self.scenario,
            values=np.where(mine_nan, other.values, self.values),
            metric_labels=self.metric_labels,
            trial_offset=self.trial_offset,
        )

    def truncated(self, trials: int) -> "ScenarioResult":
        """The first *trials* trial slots of this result's window.

        Used by the result cache to answer a t-trial query from a
        stored result covering more: slots are addressed by absolute
        trial index, so a prefix of the stored tensor is bit-identical
        to what a fresh ``trials=t`` run would produce.
        """
        if not isinstance(trials, int) or isinstance(trials, bool):
            raise ExperimentError(f"trials must be an int, got {trials!r}")
        if not 0 < trials <= self.num_trials:
            raise ExperimentError(
                f"cannot truncate {self.num_trials}-trial window of scenario "
                f"{self.scenario.name!r} to {trials} trials"
            )
        if trials == self.num_trials:
            return self
        return ScenarioResult(
            scenario=self.scenario.with_trials(trials),
            values=np.ascontiguousarray(self.values[..., :trials, :, :]),
            metric_labels=self.metric_labels,
            trial_offset=self.trial_offset,
        )

    # -- index helpers -------------------------------------------------

    def _size_index(self, size: Optional[int]) -> int:
        sizes = self.scenario.sizes
        if size is None:
            if len(sizes) != 1:
                raise ExperimentError(
                    f"scenario {self.scenario.name!r} has {len(sizes)} sizes "
                    f"{sizes}; pass size= explicitly"
                )
            return 0
        if size not in sizes:
            raise ExperimentError(
                f"size {size} not in scenario {self.scenario.name!r} "
                f"sizes {sizes}"
            )
        return sizes.index(size)

    def _ring_index(self, ring: Optional[int], size_index: int) -> int:
        rings = self.scenario.ring_sizes_at(size_index) or (0,)
        if ring is None:
            if len(rings) != 1:
                raise ExperimentError(
                    f"scenario {self.scenario.name!r} has {len(rings)} ring "
                    "sizes; pass ring= explicitly"
                )
            return 0
        if ring not in rings:
            raise ExperimentError(
                f"ring {ring} not in scenario {self.scenario.name!r} "
                f"ring_sizes {rings}"
            )
        return rings.index(ring)

    def _curve_index(self, curve: Optional[Curve], size_index: int) -> int:
        curves = self.scenario.curves_at(size_index) or ((0, 0.0),)
        if curve is None:
            if len(curves) != 1:
                raise ExperimentError(
                    f"scenario {self.scenario.name!r} has {len(curves)} "
                    "curves; pass curve= explicitly"
                )
            return 0
        curve = (int(curve[0]), float(curve[1]))
        if curve not in curves:
            raise ExperimentError(
                f"curve {curve} not in scenario {self.scenario.name!r} "
                f"curves {curves}"
            )
        return curves.index(curve)

    def _metric_index(self, metric: Optional[str]) -> int:
        if metric is None:
            if len(self.metric_labels) != 1:
                raise ExperimentError(
                    f"scenario {self.scenario.name!r} has metrics "
                    f"{self.metric_labels}; pass metric= explicitly"
                )
            return 0
        if metric not in self.metric_labels:
            raise ExperimentError(
                f"metric {metric!r} not measured; available: {self.metric_labels}"
            )
        return self.metric_labels.index(metric)

    def _metric_is_indicator(self, index: int, series: np.ndarray) -> bool:
        """Whether the metric at *index* is Bernoulli-estimable.

        Decided by the scenario's :class:`MetricSpec` when one carries
        the label (sweep scenarios).  Protocol results have no specs,
        so their values fall back to the 0/1 membership check.
        """
        spec = self.scenario.metric_by_label(self.metric_labels[index])
        if spec is not None:
            return spec.is_indicator
        return bool(np.isin(series, (0.0, 1.0)).all())

    # -- estimators ----------------------------------------------------

    def _cell(
        self, size_index: int, ring_index: int, curve_index: int, metric_index: int
    ) -> np.ndarray:
        """Raw per-trial slot values of one cell (NaNs included)."""
        cell = (ring_index, slice(None), curve_index, metric_index)
        if self.scenario.sized:
            return self.values[(size_index,) + cell]
        return self.values[cell]

    def series_at(
        self, size_index: int, ring_index: int, curve_index: int, metric_index: int
    ) -> np.ndarray:
        """Index-addressed evaluated values of one cell (NaNs dropped).

        The positional sibling of :meth:`series`, used by drivers that
        iterate the axes directly (the adaptive stopping rule).
        """
        series = self._cell(size_index, ring_index, curve_index, metric_index)
        mask = np.isnan(series)
        return series[~mask] if mask.any() else series

    def series(
        self,
        metric: Optional[str] = None,
        curve: Optional[Curve] = None,
        ring: Optional[int] = None,
        size: Optional[int] = None,
    ) -> np.ndarray:
        """Per-trial values of one ``(size, ring, curve, metric)`` cell.

        *size* is the network's node count (an entry of
        ``num_nodes_grid``); it may be omitted for plain scenarios and
        one-size grids, like *ring* and *curve* for one-entry axes.
        Trial slots the result never evaluated (``NaN`` — converged
        cells an adaptive run stopped extending) are dropped, so the
        returned length is the cell's actual sample size.
        """
        si = self._size_index(size)
        return self.series_at(
            si,
            self._ring_index(ring, si),
            self._curve_index(curve, si),
            self._metric_index(metric),
        )

    def cell_trials(
        self,
        metric: Optional[str] = None,
        curve: Optional[Curve] = None,
        ring: Optional[int] = None,
        size: Optional[int] = None,
    ) -> int:
        """Evaluated trial count of one cell (its actual sample size)."""
        return int(self.series(metric, curve, ring, size).size)

    def successes(
        self,
        metric: Optional[str] = None,
        curve: Optional[Curve] = None,
        ring: Optional[int] = None,
        size: Optional[int] = None,
    ) -> int:
        return int(self.series(metric, curve, ring, size).sum())

    def bernoulli(
        self,
        metric: Optional[str] = None,
        curve: Optional[Curve] = None,
        ring: Optional[int] = None,
        size: Optional[int] = None,
    ) -> BernoulliEstimate:
        """Wilson-interval estimate of an indicator metric."""
        series = self.series(metric, curve, ring, size)
        if series.size == 0:
            raise ExperimentError(
                f"cell has no evaluated trials for metric {metric!r} "
                f"(skipped in this shard? merge shards first, or check "
                f"cell_trials())"
            )
        if not self._metric_is_indicator(self._metric_index(metric), series):
            raise ExperimentError(
                f"metric {metric!r} is not an indicator; use series()/mean()"
            )
        return BernoulliEstimate.from_counts(int(series.sum()), series.size)

    def mean(
        self,
        metric: Optional[str] = None,
        curve: Optional[Curve] = None,
        ring: Optional[int] = None,
        size: Optional[int] = None,
    ) -> float:
        series = self.series(metric, curve, ring, size)
        if series.size == 0:
            raise ExperimentError(
                f"cell has no evaluated trials for metric {metric!r} "
                f"(skipped in this shard? merge shards first, or check "
                f"cell_trials())"
            )
        return float(series.mean())

    def agreement(
        self,
        metric_a: str,
        metric_b: str,
        curve: Optional[Curve] = None,
        ring: Optional[int] = None,
        size: Optional[int] = None,
    ) -> float:
        """Fraction of deployments where two metrics coincide.

        Meaningful because both metrics were measured on the *same*
        sampled worlds — the common-random-numbers payoff.  Only trials
        where both metrics were evaluated enter the rate.
        """
        si = self._size_index(size)
        ri = self._ring_index(ring, si)
        ci = self._curve_index(curve, si)
        a = self._cell(si, ri, ci, self._metric_index(metric_a))
        b = self._cell(si, ri, ci, self._metric_index(metric_b))
        valid = ~(np.isnan(a) | np.isnan(b))
        if not valid.any():
            raise ExperimentError(
                f"no trials evaluated both {metric_a!r} and {metric_b!r} in "
                f"this cell (skipped in this shard? merge shards first)"
            )
        return float((a[valid] == b[valid]).mean())

    def to_dict(self) -> Dict[str, object]:
        # Unevaluated slots serialize as null, not NaN: shard JSONs are
        # the multi-host interchange format, and bare NaN tokens are
        # invalid under RFC 8259 (jq / JSON.parse reject them).
        # ``from_dict``'s float64 coercion maps null back to NaN.
        nan_mask = np.isnan(self.values)
        values = (
            np.where(nan_mask, None, self.values) if nan_mask.any() else self.values
        )
        out: Dict[str, object] = {
            "scenario": self.scenario.to_dict(),
            "scenario_hash": self.scenario.content_hash(),
            "version": _library_version(),
            "metric_labels": list(self.metric_labels),
            "values": values.tolist(),
        }
        if self.trial_offset:
            out["trial_offset"] = self.trial_offset
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioResult":
        scenario = Scenario.from_dict(data["scenario"])  # type: ignore[arg-type]
        embedded = data.get("scenario_hash")
        if embedded is not None and embedded != scenario.content_hash():
            raise ShardMismatchError(
                f"shard for scenario {scenario.name!r} embeds content hash "
                f"{str(embedded)[:12]} but its scenario hashes to "
                f"{scenario.content_hash()[:12]}; the payload was edited or "
                f"mixed up in transport"
            )
        return cls(
            scenario=scenario,
            values=np.asarray(data["values"], dtype=np.float64),
            metric_labels=tuple(data["metric_labels"]),  # type: ignore[arg-type]
            trial_offset=int(data.get("trial_offset", 0)),  # type: ignore[arg-type]
        )


@dataclasses.dataclass(frozen=True)
class StudyResult:
    """Results of every scenario in a study, plus run provenance."""

    results: Tuple[ScenarioResult, ...]
    provenance: Dict[str, object]

    def __getitem__(self, name: str) -> ScenarioResult:
        for res in self.results:
            if res.scenario.name == name:
                return res
        known = ", ".join(r.scenario.name for r in self.results)
        raise ExperimentError(f"no scenario {name!r} in study result; have: {known}")

    def names(self) -> List[str]:
        return [r.scenario.name for r in self.results]

    def merge(self, other: "StudyResult") -> "StudyResult":
        """Merge two partial study results scenario-by-scenario.

        Both results must cover the same scenarios (matched by name, in
        any order); each pair merges per
        :meth:`ScenarioResult.merge`, with its adjacency and
        compatibility validation.  This is the shard-combination step
        of adaptive extension rounds and of sharded multi-host
        execution: run disjoint trial windows anywhere, merge in trial
        order.  Additive provenance (deployment counts) is summed; the
        rest is taken from ``self``.
        """
        if sorted(self.names()) != sorted(other.names()):
            raise ExperimentError(
                f"cannot merge study results over different scenario sets: "
                f"{sorted(self.names())} vs {sorted(other.names())}"
            )
        merged = tuple(res.merge(other[res.scenario.name]) for res in self.results)
        provenance = dict(self.provenance)
        if "deployments" in provenance and "deployments" in other.provenance:
            provenance["deployments"] = int(provenance["deployments"]) + int(
                other.provenance["deployments"]  # type: ignore[arg-type]
            )
        return StudyResult(results=merged, provenance=provenance)

    def to_dict(self) -> Dict[str, object]:
        return {
            "provenance": dict(self.provenance),
            "scenarios": [r.to_dict() for r in self.results],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StudyResult":
        return cls(
            results=tuple(
                ScenarioResult.from_dict(r) for r in data["scenarios"]  # type: ignore[union-attr]
            ),
            provenance=dict(data.get("provenance", {})),  # type: ignore[arg-type]
        )

    def save(self, path: Union[str, pathlib.Path]) -> None:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "StudyResult":
        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))


def render_study_result(result: StudyResult) -> str:
    """Generic rendering: one table per scenario, one row per cell.

    Indicator metrics (per their :class:`MetricSpec`) get Wilson
    intervals; value metrics get mean ± sample std even when their
    measured values happen to be all 0/1.  Size-grid scenarios emit one
    row per ``(n, K, curve, metric)`` cell.  Per-cell trial counts are
    shown explicitly because adaptive results are ragged: converged
    cells stop accumulating trials while unconverged neighbors keep
    going.  This is the output of ``repro study FILE.json`` for ad-hoc
    scenario files that have no bespoke renderer.
    """
    blocks: List[str] = []
    for res in result.results:
        sc = res.scenario
        rows: List[Sequence[object]] = []
        for si, n in enumerate(sc.sizes):
            rings = sc.ring_sizes_at(si) or ("-",)
            curves = sc.curves_at(si) or (("-", "-"),)
            for ri, ring in enumerate(rings):
                for ci, (q, p) in enumerate(curves):
                    for mi, label in enumerate(res.metric_labels):
                        series = res.series_at(si, ri, ci, mi)
                        if series.size == 0:
                            rows.append([n, ring, q, p, label, 0, "-", "-", "-"])
                        elif res._metric_is_indicator(mi, series):
                            est = BernoulliEstimate.from_counts(
                                int(series.sum()), series.size
                            )
                            rows.append(
                                [n, ring, q, p, label, series.size,
                                 est.estimate, est.ci_low, est.ci_high]
                            )
                        else:
                            std = float(series.std(ddof=1)) if series.size > 1 else 0.0
                            rows.append(
                                [n, ring, q, p, label, series.size,
                                 float(series.mean()), std, ""]
                            )
        if sc.sized:
            sizing = f"n grid={list(sc.num_nodes_grid)}"
        else:
            sizing = f"n={sc.num_nodes}"
        title = (
            f"scenario {sc.name!r} (kind={sc.kind}, {sizing}, "
            f"P={sc.pool_size}, trials={sc.trials}, seed={sc.seed})"
        )
        blocks.append(
            format_table(
                ["n", "K", "q", "p", "metric", "trials",
                 "estimate", "ci_low/std", "ci_high"],
                rows,
                title=title,
            )
        )
    return "\n\n".join(blocks)
