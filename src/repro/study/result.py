"""Typed study results: full per-trial value arrays + estimators.

A :class:`ScenarioResult` keeps the raw value tensor — shape
``(rings, trials, curves, metrics)`` for plain scenarios and
``(sizes, rings, trials, curves, metrics)`` for size-grid scenarios —
rather than pre-aggregated counts.  That is what makes the declarative
layer as expressive as the bespoke loops it replaced: Bernoulli
estimates, means/variances, histograms, agreement rates between two
metrics measured on the *same* deployments, and ratio estimates
(attack compromise fractions) are all cheap post-processing of the
tensor, and saved results can be re-analyzed without re-simulating.

Whether a metric is Bernoulli-estimable is decided by its
:class:`~repro.study.scenario.MetricSpec` (``is_indicator``), never by
inspecting the measured values: a value metric that happens to be
pinned at 0/1 (e.g. ``giant_fraction`` at saturating ``p``) is still a
value metric and renders as mean ± std.  Protocol results carry no
metric specs, so their values fall back to the 0/1 check.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ExperimentError
from repro.simulation.estimators import BernoulliEstimate
from repro.study.scenario import Curve, Scenario
from repro.utils.tables import format_table

__all__ = ["ScenarioResult", "StudyResult", "render_study_result"]


@dataclasses.dataclass(frozen=True)
class ScenarioResult:
    """All measured values of one scenario.

    For a plain scenario ``values[r, t, c, m]`` is metric ``m`` of
    curve ``c`` measured on deployment ``(ring_sizes[r], trial t)``.
    A size-grid scenario carries the size axis in front:
    ``values[s, r, t, c, m]`` for deployment ``(num_nodes_grid[s],
    ring s/r, trial t)``.  Protocol scenarios use a single pseudo-ring
    and pseudo-curve with one column per protocol value.
    """

    scenario: Scenario
    values: np.ndarray
    metric_labels: Tuple[str, ...]

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        object.__setattr__(self, "values", values)
        expected = 5 if self.scenario.sized else 4
        shape = (
            "(sizes, rings, trials, curves, metrics)"
            if self.scenario.sized
            else "(rings, trials, curves, metrics)"
        )
        if values.ndim != expected:
            raise ExperimentError(
                f"values must have shape {shape}, got {values.shape}"
            )

    # -- index helpers -------------------------------------------------

    def _size_index(self, size: Optional[int]) -> int:
        sizes = self.scenario.sizes
        if size is None:
            if len(sizes) != 1:
                raise ExperimentError(
                    f"scenario {self.scenario.name!r} has {len(sizes)} sizes "
                    f"{sizes}; pass size= explicitly"
                )
            return 0
        if size not in sizes:
            raise ExperimentError(
                f"size {size} not in scenario {self.scenario.name!r} "
                f"sizes {sizes}"
            )
        return sizes.index(size)

    def _ring_index(self, ring: Optional[int], size_index: int) -> int:
        rings = self.scenario.ring_sizes_at(size_index) or (0,)
        if ring is None:
            if len(rings) != 1:
                raise ExperimentError(
                    f"scenario {self.scenario.name!r} has {len(rings)} ring "
                    "sizes; pass ring= explicitly"
                )
            return 0
        if ring not in rings:
            raise ExperimentError(
                f"ring {ring} not in scenario {self.scenario.name!r} "
                f"ring_sizes {rings}"
            )
        return rings.index(ring)

    def _curve_index(self, curve: Optional[Curve], size_index: int) -> int:
        curves = self.scenario.curves_at(size_index) or ((0, 0.0),)
        if curve is None:
            if len(curves) != 1:
                raise ExperimentError(
                    f"scenario {self.scenario.name!r} has {len(curves)} "
                    "curves; pass curve= explicitly"
                )
            return 0
        curve = (int(curve[0]), float(curve[1]))
        if curve not in curves:
            raise ExperimentError(
                f"curve {curve} not in scenario {self.scenario.name!r} "
                f"curves {curves}"
            )
        return curves.index(curve)

    def _metric_index(self, metric: Optional[str]) -> int:
        if metric is None:
            if len(self.metric_labels) != 1:
                raise ExperimentError(
                    f"scenario {self.scenario.name!r} has metrics "
                    f"{self.metric_labels}; pass metric= explicitly"
                )
            return 0
        if metric not in self.metric_labels:
            raise ExperimentError(
                f"metric {metric!r} not measured; available: {self.metric_labels}"
            )
        return self.metric_labels.index(metric)

    def _metric_is_indicator(self, index: int, series: np.ndarray) -> bool:
        """Whether the metric at *index* is Bernoulli-estimable.

        Decided by the scenario's :class:`MetricSpec` when one carries
        the label (sweep scenarios).  Protocol results have no specs,
        so their values fall back to the 0/1 membership check.
        """
        spec = self.scenario.metric_by_label(self.metric_labels[index])
        if spec is not None:
            return spec.is_indicator
        return bool(np.isin(series, (0.0, 1.0)).all())

    # -- estimators ----------------------------------------------------

    def series(
        self,
        metric: Optional[str] = None,
        curve: Optional[Curve] = None,
        ring: Optional[int] = None,
        size: Optional[int] = None,
    ) -> np.ndarray:
        """Per-trial values of one ``(size, ring, curve, metric)`` cell.

        *size* is the network's node count (an entry of
        ``num_nodes_grid``); it may be omitted for plain scenarios and
        one-size grids, like *ring* and *curve* for one-entry axes.
        """
        si = self._size_index(size)
        cell = (
            self._ring_index(ring, si),
            slice(None),
            self._curve_index(curve, si),
            self._metric_index(metric),
        )
        if self.scenario.sized:
            return self.values[(si,) + cell]
        return self.values[cell]

    def successes(
        self,
        metric: Optional[str] = None,
        curve: Optional[Curve] = None,
        ring: Optional[int] = None,
        size: Optional[int] = None,
    ) -> int:
        return int(self.series(metric, curve, ring, size).sum())

    def bernoulli(
        self,
        metric: Optional[str] = None,
        curve: Optional[Curve] = None,
        ring: Optional[int] = None,
        size: Optional[int] = None,
    ) -> BernoulliEstimate:
        """Wilson-interval estimate of an indicator metric."""
        series = self.series(metric, curve, ring, size)
        if not self._metric_is_indicator(self._metric_index(metric), series):
            raise ExperimentError(
                f"metric {metric!r} is not an indicator; use series()/mean()"
            )
        return BernoulliEstimate.from_counts(int(series.sum()), series.size)

    def mean(
        self,
        metric: Optional[str] = None,
        curve: Optional[Curve] = None,
        ring: Optional[int] = None,
        size: Optional[int] = None,
    ) -> float:
        return float(self.series(metric, curve, ring, size).mean())

    def agreement(
        self,
        metric_a: str,
        metric_b: str,
        curve: Optional[Curve] = None,
        ring: Optional[int] = None,
        size: Optional[int] = None,
    ) -> float:
        """Fraction of deployments where two metrics coincide.

        Meaningful because both metrics were measured on the *same*
        sampled worlds — the common-random-numbers payoff.
        """
        a = self.series(metric_a, curve, ring, size)
        b = self.series(metric_b, curve, ring, size)
        return float((a == b).mean())

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario.to_dict(),
            "metric_labels": list(self.metric_labels),
            "values": self.values.tolist(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioResult":
        return cls(
            scenario=Scenario.from_dict(data["scenario"]),  # type: ignore[arg-type]
            values=np.asarray(data["values"], dtype=np.float64),
            metric_labels=tuple(data["metric_labels"]),  # type: ignore[arg-type]
        )


@dataclasses.dataclass(frozen=True)
class StudyResult:
    """Results of every scenario in a study, plus run provenance."""

    results: Tuple[ScenarioResult, ...]
    provenance: Dict[str, object]

    def __getitem__(self, name: str) -> ScenarioResult:
        for res in self.results:
            if res.scenario.name == name:
                return res
        known = ", ".join(r.scenario.name for r in self.results)
        raise ExperimentError(f"no scenario {name!r} in study result; have: {known}")

    def names(self) -> List[str]:
        return [r.scenario.name for r in self.results]

    def to_dict(self) -> Dict[str, object]:
        return {
            "provenance": dict(self.provenance),
            "scenarios": [r.to_dict() for r in self.results],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StudyResult":
        return cls(
            results=tuple(
                ScenarioResult.from_dict(r) for r in data["scenarios"]  # type: ignore[union-attr]
            ),
            provenance=dict(data.get("provenance", {})),  # type: ignore[arg-type]
        )

    def save(self, path: Union[str, pathlib.Path]) -> None:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))


def render_study_result(result: StudyResult) -> str:
    """Generic rendering: one table per scenario, one row per cell.

    Indicator metrics (per their :class:`MetricSpec`) get Wilson
    intervals; value metrics get mean ± sample std even when their
    measured values happen to be all 0/1.  Size-grid scenarios emit one
    row per ``(n, K, curve, metric)`` cell.  This is the output of
    ``repro study FILE.json`` for ad-hoc scenario files that have no
    bespoke renderer.
    """
    blocks: List[str] = []
    for res in result.results:
        sc = res.scenario
        rows: List[Sequence[object]] = []
        for si, n in enumerate(sc.sizes):
            rings = sc.ring_sizes_at(si) or ("-",)
            curves = sc.curves_at(si) or (("-", "-"),)
            for ri, ring in enumerate(rings):
                for ci, (q, p) in enumerate(curves):
                    for mi, label in enumerate(res.metric_labels):
                        if sc.sized:
                            series = res.values[si, ri, :, ci, mi]
                        else:
                            series = res.values[ri, :, ci, mi]
                        if res._metric_is_indicator(mi, series):
                            est = BernoulliEstimate.from_counts(
                                int(series.sum()), series.size
                            )
                            rows.append(
                                [n, ring, q, p, label,
                                 est.estimate, est.ci_low, est.ci_high]
                            )
                        else:
                            std = float(series.std(ddof=1)) if series.size > 1 else 0.0
                            rows.append(
                                [n, ring, q, p, label, float(series.mean()), std, ""]
                            )
        if sc.sized:
            sizing = f"n grid={list(sc.num_nodes_grid)}"
        else:
            sizing = f"n={sc.num_nodes}"
        title = (
            f"scenario {sc.name!r} (kind={sc.kind}, {sizing}, "
            f"P={sc.pool_size}, trials={sc.trials}, seed={sc.seed})"
        )
        blocks.append(
            format_table(
                ["n", "K", "q", "p", "metric", "estimate", "ci_low/std", "ci_high"],
                rows,
                title=title,
            )
        )
    return "\n\n".join(blocks)
