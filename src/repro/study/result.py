"""Typed study results: full per-trial value arrays + estimators.

A :class:`ScenarioResult` keeps the raw value tensor of shape
``(rings, trials, curves, metrics)`` rather than pre-aggregated counts.
That is what makes the declarative layer as expressive as the bespoke
loops it replaced: Bernoulli estimates, means/variances, histograms,
agreement rates between two metrics measured on the *same* deployments,
and ratio estimates (attack compromise fractions) are all cheap
post-processing of the tensor, and saved results can be re-analyzed
without re-simulating.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ExperimentError
from repro.simulation.estimators import BernoulliEstimate
from repro.study.scenario import Curve, Scenario
from repro.utils.tables import format_table

__all__ = ["ScenarioResult", "StudyResult", "render_study_result"]


@dataclasses.dataclass(frozen=True)
class ScenarioResult:
    """All measured values of one scenario.

    ``values[r, t, c, m]`` is metric ``m`` of curve ``c`` measured on
    deployment ``(ring_sizes[r], trial t)``.  Protocol scenarios use a
    single pseudo-ring and pseudo-curve with one column per protocol
    value.
    """

    scenario: Scenario
    values: np.ndarray
    metric_labels: Tuple[str, ...]

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        object.__setattr__(self, "values", values)
        if values.ndim != 4:
            raise ExperimentError(
                f"values must have shape (rings, trials, curves, metrics), "
                f"got {values.shape}"
            )

    # -- index helpers -------------------------------------------------

    def _ring_index(self, ring: Optional[int]) -> int:
        rings = self.scenario.ring_sizes or (0,)
        if ring is None:
            if len(rings) != 1:
                raise ExperimentError(
                    f"scenario {self.scenario.name!r} has {len(rings)} ring "
                    "sizes; pass ring= explicitly"
                )
            return 0
        if ring not in rings:
            raise ExperimentError(
                f"ring {ring} not in scenario {self.scenario.name!r} "
                f"ring_sizes {rings}"
            )
        return rings.index(ring)

    def _curve_index(self, curve: Optional[Curve]) -> int:
        curves = self.scenario.curves or ((0, 0.0),)
        if curve is None:
            if len(curves) != 1:
                raise ExperimentError(
                    f"scenario {self.scenario.name!r} has {len(curves)} "
                    "curves; pass curve= explicitly"
                )
            return 0
        curve = (int(curve[0]), float(curve[1]))
        if curve not in curves:
            raise ExperimentError(
                f"curve {curve} not in scenario {self.scenario.name!r} "
                f"curves {curves}"
            )
        return curves.index(curve)

    def _metric_index(self, metric: Optional[str]) -> int:
        if metric is None:
            if len(self.metric_labels) != 1:
                raise ExperimentError(
                    f"scenario {self.scenario.name!r} has metrics "
                    f"{self.metric_labels}; pass metric= explicitly"
                )
            return 0
        if metric not in self.metric_labels:
            raise ExperimentError(
                f"metric {metric!r} not measured; available: {self.metric_labels}"
            )
        return self.metric_labels.index(metric)

    # -- estimators ----------------------------------------------------

    def series(
        self,
        metric: Optional[str] = None,
        curve: Optional[Curve] = None,
        ring: Optional[int] = None,
    ) -> np.ndarray:
        """Per-trial values of one ``(ring, curve, metric)`` cell."""
        return self.values[
            self._ring_index(ring), :, self._curve_index(curve), self._metric_index(metric)
        ]

    def successes(
        self,
        metric: Optional[str] = None,
        curve: Optional[Curve] = None,
        ring: Optional[int] = None,
    ) -> int:
        return int(self.series(metric, curve, ring).sum())

    def bernoulli(
        self,
        metric: Optional[str] = None,
        curve: Optional[Curve] = None,
        ring: Optional[int] = None,
    ) -> BernoulliEstimate:
        """Wilson-interval estimate of an indicator metric."""
        series = self.series(metric, curve, ring)
        if not np.isin(series, (0.0, 1.0)).all():
            raise ExperimentError(
                f"metric {metric!r} is not an indicator; use series()/mean()"
            )
        return BernoulliEstimate.from_counts(int(series.sum()), series.size)

    def mean(
        self,
        metric: Optional[str] = None,
        curve: Optional[Curve] = None,
        ring: Optional[int] = None,
    ) -> float:
        return float(self.series(metric, curve, ring).mean())

    def agreement(
        self,
        metric_a: str,
        metric_b: str,
        curve: Optional[Curve] = None,
        ring: Optional[int] = None,
    ) -> float:
        """Fraction of deployments where two metrics coincide.

        Meaningful because both metrics were measured on the *same*
        sampled worlds — the common-random-numbers payoff.
        """
        a = self.series(metric_a, curve, ring)
        b = self.series(metric_b, curve, ring)
        return float((a == b).mean())

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario.to_dict(),
            "metric_labels": list(self.metric_labels),
            "values": self.values.tolist(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioResult":
        return cls(
            scenario=Scenario.from_dict(data["scenario"]),  # type: ignore[arg-type]
            values=np.asarray(data["values"], dtype=np.float64),
            metric_labels=tuple(data["metric_labels"]),  # type: ignore[arg-type]
        )


@dataclasses.dataclass(frozen=True)
class StudyResult:
    """Results of every scenario in a study, plus run provenance."""

    results: Tuple[ScenarioResult, ...]
    provenance: Dict[str, object]

    def __getitem__(self, name: str) -> ScenarioResult:
        for res in self.results:
            if res.scenario.name == name:
                return res
        known = ", ".join(r.scenario.name for r in self.results)
        raise ExperimentError(f"no scenario {name!r} in study result; have: {known}")

    def names(self) -> List[str]:
        return [r.scenario.name for r in self.results]

    def to_dict(self) -> Dict[str, object]:
        return {
            "provenance": dict(self.provenance),
            "scenarios": [r.to_dict() for r in self.results],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StudyResult":
        return cls(
            results=tuple(
                ScenarioResult.from_dict(r) for r in data["scenarios"]  # type: ignore[union-attr]
            ),
            provenance=dict(data.get("provenance", {})),  # type: ignore[arg-type]
        )

    def save(self, path: Union[str, pathlib.Path]) -> None:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))


def render_study_result(result: StudyResult) -> str:
    """Generic rendering: one table per scenario, one row per cell.

    Indicator metrics get Wilson intervals; value metrics get
    mean ± sample std.  This is the output of ``repro study FILE.json``
    for ad-hoc scenario files that have no bespoke renderer.
    """
    blocks: List[str] = []
    for res in result.results:
        sc = res.scenario
        rows: List[Sequence[object]] = []
        rings = sc.ring_sizes or ("-",)
        curves = sc.curves or (("-", "-"),)
        for ri, ring in enumerate(rings):
            for ci, (q, p) in enumerate(curves):
                for mi, label in enumerate(res.metric_labels):
                    series = res.values[ri, :, ci, mi]
                    if np.isin(series, (0.0, 1.0)).all():
                        est = BernoulliEstimate.from_counts(
                            int(series.sum()), series.size
                        )
                        rows.append(
                            [ring, q, p, label, est.estimate, est.ci_low, est.ci_high]
                        )
                    else:
                        std = float(series.std(ddof=1)) if series.size > 1 else 0.0
                        rows.append(
                            [ring, q, p, label, float(series.mean()), std, ""]
                        )
        title = (
            f"scenario {sc.name!r} (kind={sc.kind}, n={sc.num_nodes}, "
            f"P={sc.pool_size}, trials={sc.trials}, seed={sc.seed})"
        )
        blocks.append(
            format_table(
                ["K", "q", "p", "metric", "estimate", "ci_low/std", "ci_high"],
                rows,
                title=title,
            )
        )
    return "\n\n".join(blocks)
