"""Deployment sampling and metric evaluation for the study compiler.

One *deployment* is the shared random world of a ``(K, trial)`` cell:
the sampled rings, the candidate pairs sharing at least ``q_min`` keys
with their overlap counts, and the channel variables (one uniform per
candidate edge for the on/off model, torus positions for the disk
model, one capture permutation when attack metrics are requested).
Every curve and metric of every scenario in the deployment's group is a
deterministic function of these arrays — nothing is resampled.

Draw order is part of the contract (it fixes the random stream):
rings, then on/off uniforms (if any on/off scenario is present), then
disk positions (if any disk scenario), then the capture permutation
(if any capture metric).  Single-scenario on/off groups therefore
reproduce the PR 1 sweep engine bit-for-bit.

The per-curve metric cascade is arranged so work is shared: degrees
are one ``np.bincount`` over the masked pair endpoints and serve the
min-degree law, degree counts, and the k-connectivity pre-filter; the
exact k-connected decision runs only when the pre-filter passes.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.exceptions import ParameterError
from repro.graphs.unionfind import (
    connected_components_labels,
    is_connected_pair_keys,
)
from repro.kernels import get_backend
from repro.keygraphs.rings import (
    sample_class_labels,
    sample_class_rings,
    sample_uniform_rings,
)
from repro.keygraphs.uniform_graph import overlap_counts_from_rings
from repro.simulation.sweep import class_pair_probabilities
from repro.study.scenario import ClassMix, MetricSpec, Scenario

__all__ = [
    "Deployment",
    "DeploymentEvaluator",
    "evaluate_scenario",
    "sample_deployment",
]

# Indicator metrics that are monotone increasing in the edge set: within
# one deployment, curve (q', p') keeps a superset of curve (q, p)'s edges
# whenever q' <= q and p' >= p, so a success at the smaller edge set (or
# a failure at the larger) decides the other curve without recomputing.
# Each metric maps to a deduction *family* sharing one ledger across
# every scenario of the deployment group, plus a strength rank within
# the family (k-connectivity implies the min-degree law at the same k;
# resilient connectivity implies survivor connectivity at the same
# capture level).
_MONOTONE_KINDS = frozenset(
    (
        "connectivity",
        "k_connectivity",
        "min_degree",
        "survivor_connectivity",
        "resilient_connectivity",
    )
)


def _ledger_key(channel: str, metric: MetricSpec):
    """Deduction-family key, or ``None`` if the metric is not monotone."""
    if metric.kind in ("connectivity", "k_connectivity", "min_degree"):
        return ("kconn", channel)
    if metric.kind in ("survivor_connectivity", "resilient_connectivity"):
        return ("capture", metric.captured, channel)
    return None


def _ledger_coords(metric: MetricSpec):
    """(strength rank, k) of a metric inside its deduction family.

    A recorded value decides a target iff the recorded *property* is
    comparable: success transfers downward (recorded at least as strong
    on every axis, edge set a subset), failure transfers upward.
    """
    if metric.kind == "connectivity":
        return (1, 1)
    if metric.kind == "k_connectivity":
        return (1, metric.k)
    if metric.kind == "min_degree":
        return (0, metric.k)
    if metric.kind == "resilient_connectivity":
        return (1, 1)
    return (0, 1)  # survivor_connectivity


@dataclasses.dataclass
class Deployment:
    """One sampled world: rings + candidate pairs + channel variables.

    ``rings`` is the ``(n, K)`` array of a homogeneous deployment or
    the ragged per-node list of a heterogeneous (class-mix) one; in the
    latter case ``labels`` carries the per-node class and
    ``pair_alpha`` the per-candidate class-pair channel probability
    ``alpha[c(u), c(v)]`` (curve ``p`` scales it at mask time).
    """

    num_nodes: int
    rings: Union[np.ndarray, List[np.ndarray]]
    candidates: np.ndarray  # int64 pair keys u * n + v with count >= q_min
    counts: np.ndarray  # shared-key count per candidate
    uniforms: Optional[np.ndarray] = None  # on/off channel
    pair_dists: Optional[np.ndarray] = None  # disk channel, per candidate
    capture_order: Optional[np.ndarray] = None  # node permutation
    labels: Optional[np.ndarray] = None  # per-node class (class mix)
    pair_alpha: Optional[np.ndarray] = None  # per-candidate alpha[c(u), c(v)]


def sample_deployment(
    num_nodes: int,
    pool_size: int,
    ring_size: Union[int, Tuple[int, ...]],
    q_min: int,
    rng: np.random.Generator,
    *,
    needs_onoff: bool = True,
    needs_disk: bool = False,
    needs_capture: bool = False,
    class_mix: Optional[ClassMix] = None,
) -> Deployment:
    """Sample one deployment; draw only the channel variables needed.

    With *class_mix*, *ring_size* is the per-class ``(K_1, ..., K_C)``
    vector and the draw order grows a class-label block at the front:
    labels, rings (per class), then the channel variables.  Homogeneous
    deployments keep the established stream layout untouched.
    """
    labels: Optional[np.ndarray] = None
    if class_mix is not None:
        if not isinstance(ring_size, (tuple, list)):
            raise ParameterError(
                "class-mix deployments take a per-class ring-size vector, "
                f"got the scalar {ring_size!r}"
            )
        labels = sample_class_labels(num_nodes, class_mix.mu, rng)
        rings: Union[np.ndarray, List[np.ndarray]] = sample_class_rings(
            labels, ring_size, pool_size, rng
        )
    else:
        if isinstance(ring_size, (tuple, list)):
            raise ParameterError(
                f"homogeneous deployments take one ring size, got {ring_size!r}"
            )
        rings = sample_uniform_rings(num_nodes, int(ring_size), pool_size, rng)
    pair_keys, counts = overlap_counts_from_rings(rings)
    keep = counts >= q_min
    candidates = pair_keys[keep]
    cand_counts = counts[keep]
    uniforms = rng.random(candidates.size) if needs_onoff else None
    pair_dists = None
    if needs_disk:
        positions = rng.random((num_nodes, 2))
        u = candidates // num_nodes
        v = candidates % num_nodes
        delta = np.abs(positions[u] - positions[v])
        delta = np.minimum(delta, 1.0 - delta)  # unit torus
        pair_dists = np.sqrt((delta * delta).sum(axis=1))
    capture_order = rng.permutation(num_nodes) if needs_capture else None
    pair_alpha = None
    if class_mix is not None:
        assert labels is not None
        pair_alpha = class_pair_probabilities(
            labels, candidates, num_nodes, class_mix.channel_probs
        )
    return Deployment(
        num_nodes=num_nodes,
        rings=rings,
        candidates=candidates,
        counts=cand_counts,
        uniforms=uniforms,
        pair_dists=pair_dists,
        capture_order=capture_order,
        labels=labels,
        pair_alpha=pair_alpha,
    )


class DeploymentEvaluator:
    """Evaluate curve masks and metrics on one deployment, with caching.

    Caches are keyed by ``(channel, q, p)`` for masks/degrees/edges and
    by the captured count for attack state, so metrics that share
    intermediate arrays (mask → degrees → exact decision; one censored
    overlap count per captured level) never recompute them.
    """

    def __init__(self, dep: Deployment) -> None:
        self.dep = dep
        self._masks: Dict[Tuple[str, int, float], np.ndarray] = {}
        self._selected: Dict[Tuple[str, int, float], np.ndarray] = {}
        self._degrees: Dict[Tuple[str, int, float], np.ndarray] = {}
        self._compromised: Dict[int, np.ndarray] = {}

    # -- shared intermediates -----------------------------------------

    def curve_mask(self, channel: str, q: int, p: float) -> np.ndarray:
        key = (channel, q, p)
        mask = self._masks.get(key)
        if mask is not None:
            return mask
        dep = self.dep
        overlap_ok = dep.counts >= q
        if channel == "onoff":
            if dep.pair_alpha is not None:
                # Heterogeneous channel: the curve's p scales the
                # per-candidate class-pair probability.  Uniforms lie in
                # [0, 1), so an effective probability of exactly 1 keeps
                # every candidate, like the homogeneous p = 1 fast path.
                assert dep.uniforms is not None
                mask = overlap_ok & (dep.uniforms < p * dep.pair_alpha)
            elif p < 1.0:
                assert dep.uniforms is not None
                mask = overlap_ok & (dep.uniforms < p)
            else:
                mask = overlap_ok
        elif channel == "disk":
            assert dep.pair_dists is not None
            radius = math.sqrt(p / math.pi)
            mask = overlap_ok & (dep.pair_dists <= radius)
        else:  # pragma: no cover - scenarios validate the channel kind
            raise ParameterError(f"unknown channel {channel!r}")
        self._masks[key] = mask
        return mask

    def selected_keys(self, channel: str, q: int, p: float) -> np.ndarray:
        key = (channel, q, p)
        sel = self._selected.get(key)
        if sel is None:
            sel = self.dep.candidates[self.curve_mask(channel, q, p)]
            self._selected[key] = sel
        return sel

    def degrees(self, channel: str, q: int, p: float) -> np.ndarray:
        """Per-node degrees: one batched ``np.bincount`` per curve."""
        key = (channel, q, p)
        deg = self._degrees.get(key)
        if deg is None:
            n = self.dep.num_nodes
            sel = self.selected_keys(channel, q, p)
            deg = np.bincount(sel // n, minlength=n) + np.bincount(
                sel % n, minlength=n
            )
            self._degrees[key] = deg
        return deg

    def _edges(self, channel: str, q: int, p: float) -> np.ndarray:
        n = self.dep.num_nodes
        sel = self.selected_keys(channel, q, p)
        out = np.empty((sel.size, 2), dtype=np.int64)
        out[:, 0] = sel // n
        out[:, 1] = sel % n
        return out

    def _compromised_flags(self, captured: int) -> np.ndarray:
        """Per-candidate flag: all shared keys of the pair captured.

        The capture order is one permutation per deployment, so captured
        sets at increasing levels are nested prefixes (the attack grid
        is coupled the same way the channel grid is).  A candidate pair
        is compromised iff its censored overlap — shared keys drawn
        from the *uncaptured* part of the pool — is zero.
        """
        flags = self._compromised.get(captured)
        if flags is not None:
            return flags
        dep = self.dep
        if captured == 0:
            flags = np.zeros(dep.candidates.size, dtype=bool)
        else:
            assert dep.capture_order is not None
            # Capture metrics are validated incompatible with class
            # mixes, so rings is always the rectangular (n, K) array.
            assert isinstance(dep.rings, np.ndarray)
            captured_nodes = dep.capture_order[:captured]
            captured_keys = np.unique(dep.rings[captured_nodes])
            valid = ~np.isin(dep.rings, captured_keys)
            censored = [dep.rings[i][valid[i]] for i in range(dep.num_nodes)]
            pairs_c, _ = overlap_counts_from_rings(censored)
            pos = np.searchsorted(pairs_c, dep.candidates)
            pos = np.minimum(pos, max(pairs_c.size - 1, 0))
            present = (
                pairs_c[pos] == dep.candidates
                if pairs_c.size
                else np.zeros(dep.candidates.size, dtype=bool)
            )
            flags = ~present
        self._compromised[captured] = flags
        return flags

    def _alive(self, captured: int) -> Tuple[np.ndarray, np.ndarray, int]:
        """(alive node mask, new ids, survivor count) for a capture level."""
        dep = self.dep
        alive = np.ones(dep.num_nodes, dtype=bool)
        if captured:
            assert dep.capture_order is not None
            alive[dep.capture_order[:captured]] = False
        new_ids = np.cumsum(alive) - 1
        return alive, new_ids, int(alive.sum())

    def _survivor_keys(
        self, channel: str, q: int, p: float, captured: int, *, trusted_only: bool
    ) -> Tuple[int, np.ndarray]:
        """Relabel masked links between surviving nodes to survivor ids."""
        dep = self.dep
        mask = self.curve_mask(channel, q, p)
        if trusted_only:
            mask = mask & ~self._compromised_flags(captured)
        alive, new_ids, n_live = self._alive(captured)
        sel = dep.candidates[mask]
        u = sel // dep.num_nodes
        v = sel % dep.num_nodes
        both = alive[u] & alive[v]
        keys = new_ids[u[both]] * np.int64(n_live) + new_ids[v[both]]
        return n_live, keys

    # -- the metric dispatch ------------------------------------------

    def evaluate(self, channel: str, q: int, p: float, metric: MetricSpec) -> float:
        dep = self.dep
        kind = metric.kind
        if kind == "connectivity":
            return float(
                is_connected_pair_keys(dep.num_nodes, self.selected_keys(channel, q, p))
            )
        if kind == "min_degree":
            return float(int(self.degrees(channel, q, p).min()) >= metric.k)
        if kind == "degree_count":
            return float(int((self.degrees(channel, q, p) == metric.h).sum()))
        if kind == "k_connectivity":
            if metric.k == 1:
                return float(
                    is_connected_pair_keys(
                        dep.num_nodes, self.selected_keys(channel, q, p)
                    )
                )
            if int(self.degrees(channel, q, p).min()) < metric.k:
                return 0.0  # batched min-degree pre-filter
            # Exact decision on the kernel backend: the Nagamochi–
            # Ibaraki certificate pass runs before any flow network is
            # built, and no Graph object is constructed on this path.
            return float(
                get_backend().k_connected(
                    dep.num_nodes, self._edges(channel, q, p), metric.k
                )
            )
        if kind == "giant_fraction":
            edges = self._edges(channel, q, p)
            labels = connected_components_labels(dep.num_nodes, edges)
            return float(np.bincount(labels).max() / dep.num_nodes)
        if kind == "attack_evaluated":
            alive, _, _ = self._alive(metric.captured)
            sel = self.selected_keys(channel, q, p)
            u = sel // dep.num_nodes
            v = sel % dep.num_nodes
            return float(int((alive[u] & alive[v]).sum()))
        if kind == "attack_compromised":
            mask = self.curve_mask(channel, q, p)
            comp = self._compromised_flags(metric.captured)
            alive, _, _ = self._alive(metric.captured)
            sel = dep.candidates[mask & comp]
            u = sel // dep.num_nodes
            v = sel % dep.num_nodes
            return float(int((alive[u] & alive[v]).sum()))
        if kind == "survivor_connectivity":
            n_live, keys = self._survivor_keys(
                channel, q, p, metric.captured, trusted_only=False
            )
            return float(is_connected_pair_keys(n_live, keys))
        if kind == "resilient_connectivity":
            n_live, keys = self._survivor_keys(
                channel, q, p, metric.captured, trusted_only=True
            )
            return float(is_connected_pair_keys(n_live, keys))
        raise ParameterError(f"unknown metric kind {kind!r}")  # pragma: no cover


def evaluate_scenario(
    evaluator: DeploymentEvaluator,
    scenario: Scenario,
    ledgers: Optional[Dict] = None,
    curves: Optional[Tuple] = None,
) -> np.ndarray:
    """All ``(curve, metric)`` values of one scenario on one deployment.

    *curves* overrides the scenario's flat curve grid — the compiler
    passes ``scenario.curves_at(size_index)`` so sized scenarios
    evaluate the curve list belonging to the deployment's network size.

    Monotone indicator metrics use lattice deduction: every measured
    value is recorded in a per-deployment ledger at coordinates
    ``(strength rank, k, q, p)``, and a new cell is computed only when
    no recorded value decides it — a *success* transfers to any weaker
    property on a superset edge set (smaller rank/k, smaller q, larger
    p), a *failure* to any stronger property on a subset edge set.
    Passing a shared ``ledgers`` dict extends the deduction across all
    scenarios of a deployment group (e.g. a k = 2 biconnectivity
    failure decides k = 3 cells at thinner channels before any flow
    runs).  Deductions are exact — monotonicity holds per deployment,
    not just in distribution — so results are bit-identical to
    exhaustive evaluation; the expensive exact k-connectivity decision
    is precisely the metric they short-circuit most often.
    """
    if curves is None:
        curves = scenario.curves
    out = np.empty((len(curves), len(scenario.metrics)), dtype=np.float64)
    if ledgers is None:
        ledgers = {}
    order = sorted(
        range(len(curves)), key=lambda ci: (-curves[ci][0], curves[ci][1])
    )
    for mi, metric in enumerate(scenario.metrics):
        if metric.kind not in _MONOTONE_KINDS:
            for ci, (q, p) in enumerate(curves):
                out[ci, mi] = evaluator.evaluate(scenario.channel, q, p, metric)
            continue
        ledger = ledgers.setdefault(_ledger_key(scenario.channel, metric), [])
        rank, k = _ledger_coords(metric)
        for ci in order:
            q, p = curves[ci]
            value = None
            for rank_e, k_e, q_e, p_e, v_e in ledger:
                if (
                    v_e == 1.0
                    and rank_e >= rank and k_e >= k
                    and q_e >= q and p_e <= p
                ):
                    value = 1.0
                    break
                if (
                    v_e == 0.0
                    and rank_e <= rank and k_e <= k
                    and q_e <= q and p_e >= p
                ):
                    value = 0.0
                    break
            if value is None:
                value = evaluator.evaluate(scenario.channel, q, p, metric)
            ledger.append((rank, k, q, p, value))
            out[ci, mi] = value
    return out
