"""Declarative Scenario/Study experiment layer.

Every experiment in this repository is, at bottom, a *post-filter* over
one sampled deployment family: rings are drawn, key-overlap counts are
computed, and then each ``(q, p)`` curve and each metric (connectivity,
k-connectivity, min-degree law, degree counts, attack exposure, ...) is
a deterministic function of those shared candidate-pair arrays plus a
few extra channel draws.  This package makes that structure the API:

* :class:`~repro.study.scenario.Scenario` — a frozen, JSON-round-
  trippable description of one experiment: node count (or a
  ``num_nodes_grid`` size axis for growth sweeps, with per-size pool,
  ``K`` grid, and curves), key scheme parameters, channel model, a
  grid over ``K`` and ``(q, p)`` curves, a metric set, trial count,
  and seed.
* :class:`~repro.study.compiler.Study` — one or more scenarios compiled
  into a shared-deployment sweep plan.  Scenarios that share a
  deployment family (same ``n``, pool, ``K`` grid, trials, and seed)
  are grouped so rings, overlap counts, and channel variables are
  sampled *once* per ``(K, trial)`` cell and every requested metric is
  derived from the same candidate-pair arrays — common random numbers
  across every curve and metric in the group.
* :class:`~repro.study.result.StudyResult` — typed results holding the
  full per-trial value arrays, with per-metric Bernoulli estimates,
  means, agreement rates, and provenance.

Execution is deterministic: deployment ``(ring_index, trial)`` of a
group seeded with ``s`` always uses ``SeedSequence(s, spawn_key=
(ring_index, trial))`` — size-grid groups prepend the size index,
``spawn_key=(size_index, ring_index, trial)`` — so results are
bit-identical for any worker count and any trial-block layout.  Work
runs on the persistent warm worker pool
(:mod:`repro.simulation.pool`).

New workloads need zero new Python: write a scenario (or list of
scenarios) as JSON and run ``repro study FILE.json``.

Results are *mergeable*: a :class:`ScenarioResult` may cover a window
of the trial axis (``trial_offset``), :meth:`Study.run_extension`
emits those windows from arbitrary starting trial indices, and
:mod:`repro.study.adaptive` drives extension rounds until every
``(size, K, curve)`` cell meets a CI target — ``repro study FILE.json
--target-ci 0.02`` spends trials where the estimates are still loose
instead of everywhere.
"""

from repro.study.adaptive import (
    AdaptivePolicy,
    run_adaptive_study,
    trial_allocation,
)
from repro.study.compiler import Study, run_scenario
from repro.study.result import ScenarioResult, StudyResult, render_study_result
from repro.study.scenario import (
    CHANNEL_KINDS,
    METRIC_KINDS,
    ClassMix,
    MetricSpec,
    Scenario,
)

__all__ = [
    "AdaptivePolicy",
    "CHANNEL_KINDS",
    "METRIC_KINDS",
    "ClassMix",
    "MetricSpec",
    "Scenario",
    "Study",
    "run_adaptive_study",
    "run_scenario",
    "trial_allocation",
    "ScenarioResult",
    "StudyResult",
    "render_study_result",
]
