"""Named trial protocols for scenarios the sweep engine cannot express.

Most experiments are post-filters over shared deployments and compile
onto the sweep path.  A few sample *jointly structured* randomness —
e.g. the Lemma 5 coupled uniform/binomial ring pair — and keep their
bespoke per-trial protocol.  Registering the protocol by name keeps the
scenario JSON-round-trippable: ``{"kind": "protocol", "protocol":
"coupling", "protocol_params": {...}}`` is a complete description.

A protocol maps a :class:`~repro.study.scenario.Scenario` to a
picklable ``trial(rng) -> tuple`` plus the names of the returned
values; the compiler runs it through the ordinary deterministic trial
engine (per-trial seeds, warm pool, worker-invariant results).
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Callable, Dict, Tuple

import numpy as np

from repro.exceptions import ExperimentError, ParameterError

__all__ = ["ProtocolSpec", "get_protocol", "list_protocols", "register_protocol"]


@dataclasses.dataclass(frozen=True)
class ProtocolSpec:
    """A named bespoke trial protocol."""

    name: str
    description: str
    value_names: Tuple[str, ...]
    build: Callable  # Scenario -> trial(rng) -> tuple of floats


_REGISTRY: Dict[str, ProtocolSpec] = {}


def register_protocol(spec: ProtocolSpec) -> ProtocolSpec:
    if spec.name in _REGISTRY:
        raise ExperimentError(f"protocol {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_protocol(name: str) -> ProtocolSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise ExperimentError(f"unknown protocol {name!r}; known: {known}")


def list_protocols() -> Tuple[ProtocolSpec, ...]:
    return tuple(_REGISTRY.values())


def _protocol_param(scenario, key: str, default=None):
    params = dict(scenario.protocol_params)
    if default is None and key not in params:
        raise ParameterError(
            f"protocol {scenario.protocol!r} needs protocol_params[{key!r}]"
        )
    return params.get(key, default)


# -- coupling (Lemmas 5-6) --------------------------------------------


def _coupling_trial(
    num_nodes: int,
    key_ring_size: int,
    pool_size: int,
    q: int,
    rng: np.random.Generator,
) -> Tuple[float, float]:
    from repro.experiments.coupling_check import coupling_trial

    success, subset_ok = coupling_trial(
        num_nodes, key_ring_size, pool_size, q, rng
    )
    return (float(success), float(subset_ok))


def _build_coupling(scenario) -> Callable:
    key_ring_size = int(_protocol_param(scenario, "key_ring_size"))
    q = int(_protocol_param(scenario, "q", 2))
    return functools.partial(
        _coupling_trial, scenario.num_nodes, key_ring_size, scenario.pool_size, q
    )


register_protocol(
    ProtocolSpec(
        name="coupling",
        description=(
            "Lemma 5 coupled uniform/binomial ring pair: coupling success "
            "and H_q-subset-of-G_q validity per joint sample."
        ),
        value_names=("success", "subset_ok"),
        build=_build_coupling,
    )
)
