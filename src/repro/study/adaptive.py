"""Adaptive trial allocation: CI-targeted extension of compiled studies.

A fixed trial count is the wrong resource allocation for threshold
phenomena like the zero-one law (Theorem 1): cells in the flat 0/1
tails resolve to a tight Wilson interval within tens of trials, while
cells in the transition band need thousands — and a fixed count must
be sized for the worst cell, overpaying everywhere else.  This driver
runs a compiled :class:`~repro.study.compiler.Study` in trial-block
rounds and, after each round, keeps extending only the ``(size, K,
curve)`` cells whose stopping statistic still exceeds their CI target:

* indicator metrics (per their
  :class:`~repro.study.scenario.MetricSpec`) stop when the Wilson
  half-width of the cell's estimate drops to ``ci_target``;
* value metrics stop when the standard error of the mean does.

Each round executes
:meth:`~repro.study.compiler.Study.run_extension` over the absolute
trial window ``[t, t + block)`` with the established ``(size_index,
ring_index, trial)`` SeedSequence addressing and merges the shard into
the accumulating result
(:meth:`~repro.study.result.ScenarioResult.merge`), so a converged
adaptive run is bit-for-bit identical to a one-shot run at the same
per-cell trial counts — determinism is never traded for adaptivity.
Converged cells hold ``NaN`` beyond their stopping point; estimator
accessors skip those slots, so every cell's estimate uses exactly the
trials it was allocated.

Because curves of one ``(size, K)`` column share sampled deployments
(the common-random-numbers engine), a column's worlds keep being
sampled while *any* of its cells is unconverged; converged cells are
merely no longer evaluated on them.  The per-cell accounting is still
the honest cost model for estimate production — a fixed design must
buy ``max_cell_trials`` samples for *every* cell, an adaptive one only
for the cells that need them — and skipping evaluation avoids the
per-curve connectivity/flow decisions, the dominant post-sampling
cost.

The ``indicator_band`` policy knob implements "sharpen only the
transition band": indicator cells whose running estimate sits outside
``(band_low, band_high)`` — the saturated 0/1 tails — are held to the
looser ``tail_ci_target`` instead of ``ci_target``, concentrating
trials where Theorem 1's claim actually lives.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.exceptions import ParameterError
from repro.simulation.estimators import wilson_half_width
from repro.simulation.scheduler import SchedulerPolicy, combine_fault_reports
from repro.study.compiler import ActiveMap, Study
from repro.study.result import ScenarioResult, StudyResult
from repro.study.scenario import Scenario

__all__ = [
    "AdaptivePolicy",
    "run_adaptive_study",
    "stopping_half_width",
    "mean_standard_error",
    "trial_allocation",
]

_events_mod = None


def _emit(kind: str, **fields: object) -> None:
    """Publish a progress event on the service bus, if anyone listens.

    Lazy import for the same reason as the scheduler's hook: the
    service layer imports the study layer, not the other way around.
    """
    global _events_mod
    if _events_mod is None:
        from repro.service import events as _events

        _events_mod = _events
    _events_mod.emit(kind, **fields)


def _open_cells(active: ActiveMap, plans) -> set:
    """The ``(group, size, ring, scenario, curve)`` cells still open."""
    cells = set()
    for (gi, si, ri), sel in active.items():
        for scenario, chosen in zip(plans[gi].scenarios, sel):
            for ci in chosen:
                cells.add((gi, si, ri, scenario.name, ci))
    return cells


def mean_standard_error(series: np.ndarray) -> float:
    """Standard error of the mean, ``s / sqrt(n)`` (sample std, ddof=1).

    Returns ``inf`` below two samples — a mean metric can never stop
    before its spread is measurable.
    """
    series = np.asarray(series, dtype=np.float64)
    n = series.size
    if n < 2:
        return math.inf
    return float(series.std(ddof=1)) / math.sqrt(n)


def stopping_half_width(
    series: np.ndarray, *, is_indicator: bool, z: float = 1.96
) -> float:
    """The statistic a cell's CI target is compared against.

    Indicators use the Wilson half-width of the cell's success count
    (well-behaved at the degenerate all-0/all-1 cells that dominate
    the zero-one tails); value metrics use the standard error of the
    mean.  An empty cell is infinitely unresolved.
    """
    series = np.asarray(series, dtype=np.float64)
    if series.size == 0:
        return math.inf
    if is_indicator:
        return wilson_half_width(int(series.sum()), int(series.size), z)
    return mean_standard_error(series)


@dataclasses.dataclass(frozen=True)
class AdaptivePolicy:
    """Stopping rule of one adaptive run.

    Attributes
    ----------
    ci_target:
        Default per-cell target: extension stops when the cell's
        stopping statistic (Wilson half-width for indicators, standard
        error for means) is at or below it.
    max_trials:
        Hard per-cell cap; cells still unconverged there stop anyway.
    block_trials:
        Trials added per round; defaults to each scenario's declared
        ``trials`` (the first round's size).
    ci_targets:
        Per-metric-label overrides, e.g. ``{"connectivity": 0.01}``.
    indicator_band:
        Optional ``(low, high)``: indicator cells whose running
        estimate falls outside it (the saturated tails) are held to
        ``tail_ci_target`` instead — the "sharpen only the transition
        band" mode.
    tail_ci_target:
        Target for out-of-band indicator cells (defaults to
        ``ci_target``; never tighter than it).
    z:
        Normal quantile of the interval (1.96 = 95%).
    """

    ci_target: float = 0.02
    max_trials: int = 4000
    block_trials: Optional[int] = None
    ci_targets: Union[Mapping[str, float], Tuple[Tuple[str, float], ...]] = ()
    indicator_band: Optional[Tuple[float, float]] = None
    tail_ci_target: Optional[float] = None
    z: float = 1.96

    def __post_init__(self) -> None:
        # Positive, not (0, 1): Wilson half-widths live in (0, 0.5],
        # but the standard-error rule applies to value metrics on any
        # scale (degree counts, attack exposure), where targets >= 1
        # are perfectly sensible.
        if not self.ci_target > 0.0:
            raise ParameterError(
                f"ci_target must be positive, got {self.ci_target}"
            )
        if not isinstance(self.max_trials, int) or self.max_trials < 1:
            raise ParameterError(
                f"max_trials must be a positive int, got {self.max_trials!r}"
            )
        if self.block_trials is not None and (
            not isinstance(self.block_trials, int) or self.block_trials < 1
        ):
            raise ParameterError(
                f"block_trials must be a positive int, got {self.block_trials!r}"
            )
        if isinstance(self.ci_targets, Mapping):
            object.__setattr__(
                self, "ci_targets", tuple(sorted(self.ci_targets.items()))
            )
        else:
            object.__setattr__(
                self,
                "ci_targets",
                tuple((str(k), float(v)) for k, v in self.ci_targets),
            )
        for label, target in self.ci_targets:
            if not target > 0.0:
                raise ParameterError(
                    f"ci_targets[{label!r}] must be positive, got {target}"
                )
        if self.indicator_band is not None:
            low, high = self.indicator_band
            if not 0.0 <= low < high <= 1.0:
                raise ParameterError(
                    f"indicator_band must satisfy 0 <= low < high <= 1, "
                    f"got {self.indicator_band}"
                )
            object.__setattr__(self, "indicator_band", (float(low), float(high)))
        if self.tail_ci_target is not None and not self.tail_ci_target > 0.0:
            raise ParameterError(
                f"tail_ci_target must be positive, got {self.tail_ci_target}"
            )
        if self.z <= 0:
            raise ParameterError(f"z must be positive, got {self.z}")

    def target_for(
        self, label: str, *, is_indicator: bool, estimate: Optional[float] = None
    ) -> float:
        """The CI target one cell is held to right now.

        Band membership is decided by the *running* estimate, so a
        cell that drifts into the transition band re-tightens on the
        next round — the band assignment is re-checked every round,
        never latched.
        """
        base = dict(self.ci_targets).get(label, self.ci_target)
        if (
            is_indicator
            and self.indicator_band is not None
            and estimate is not None
        ):
            low, high = self.indicator_band
            if estimate <= low or estimate >= high:
                tail = self.tail_ci_target if self.tail_ci_target is not None else base
                return max(base, tail)
        return base

    def to_dict(self) -> Dict[str, object]:
        return {
            "ci_target": self.ci_target,
            "max_trials": self.max_trials,
            "block_trials": self.block_trials,
            "ci_targets": dict(self.ci_targets),
            "indicator_band": (
                list(self.indicator_band) if self.indicator_band else None
            ),
            "tail_ci_target": self.tail_ci_target,
            "z": self.z,
        }


def _cell_converged(
    res: ScenarioResult,
    scenario: Scenario,
    si: int,
    ri: int,
    ci: int,
    policy: AdaptivePolicy,
) -> bool:
    """Whether every metric of one ``(size, K, curve)`` cell has stopped."""
    for mi, metric in enumerate(scenario.metrics):
        series = res.series_at(si, ri, ci, mi)
        if series.size >= policy.max_trials:
            continue
        half_width = stopping_half_width(
            series, is_indicator=metric.is_indicator, z=policy.z
        )
        estimate = float(series.mean()) if series.size else None
        target = policy.target_for(
            metric.label, is_indicator=metric.is_indicator, estimate=estimate
        )
        if half_width > target:
            return False
    return True


def _active_columns(
    plans, acc: Dict[str, ScenarioResult], policy: AdaptivePolicy
) -> ActiveMap:
    """Unconverged ``(size, K, curve)`` cells, keyed per schedulable column."""
    active: ActiveMap = {}
    for gi, plan in enumerate(plans):
        for si in range(plan.num_sizes):
            for ri in range(plan.num_rings):
                sel: List[Tuple[int, ...]] = []
                any_open = False
                for scenario in plan.scenarios:
                    res = acc[scenario.name]
                    open_curves = tuple(
                        ci
                        for ci in range(len(scenario.curves_at(si)))
                        if not _cell_converged(res, scenario, si, ri, ci, policy)
                    )
                    sel.append(open_curves)
                    any_open = any_open or bool(open_curves)
                if any_open:
                    active[(gi, si, ri)] = tuple(sel)
    return active


def _sweep_families(study: Study) -> List[Tuple[Scenario, ...]]:
    """Sweep scenarios grouped by deployment family, in study order."""
    families: Dict[Tuple, List[Scenario]] = {}
    for scenario in study.scenarios:
        if scenario.kind == "sweep":
            families.setdefault(scenario.deployment_key(), []).append(scenario)
    return [tuple(members) for members in families.values()]


def run_adaptive_study(
    study: Study,
    policy: Optional[AdaptivePolicy] = None,
    workers: Optional[int] = None,
    scheduler: Optional[SchedulerPolicy] = None,
    **policy_kwargs: object,
) -> StudyResult:
    """Run *study* adaptively until every cell meets its CI target.

    The scenarios' declared ``trials`` is the first round (every cell
    needs a minimum sample before its half-width means anything); each
    subsequent round extends the still-open cells by ``block_trials``
    more trials, capped at ``max_trials`` per cell.  Deployment
    families extend independently — a family whose cells all converge
    stops paying for the others.  Protocol scenarios run once at their
    declared trials (their bespoke loops have no post-filter structure
    to extend cheaply) and pass through unchanged.

    *scheduler* opts every round into fault-tolerant per-unit
    supervision (see :meth:`Study.run`); per-round fault reports are
    folded into one combined ``"faults"`` provenance entry.

    Returns a :class:`StudyResult` whose provenance carries the
    policy, the per-round windows, and the final allocation summary
    (see :func:`trial_allocation`).
    """
    if policy is None:
        policy = AdaptivePolicy(**policy_kwargs)  # type: ignore[arg-type]
    elif policy_kwargs:
        raise ParameterError(
            "pass either a policy object or policy keywords, not both"
        )
    known_labels = {
        label
        for scenario in study.scenarios
        if scenario.kind == "sweep"
        for label in scenario.metric_labels()
    }
    unknown = [label for label, _ in policy.ci_targets if label not in known_labels]
    if unknown:
        raise ParameterError(
            f"ci_targets name metrics this study never measures: {unknown}; "
            f"measured metric labels: {sorted(known_labels)}"
        )

    first = study.run(workers=workers, scheduler=scheduler)
    acc: Dict[str, ScenarioResult] = {
        res.scenario.name: res for res in first.results
    }
    deployments = int(first.provenance.get("deployments", 0))  # type: ignore[arg-type]
    rounds: List[Dict[str, object]] = []
    fault_reports: List[Optional[Dict[str, object]]] = [
        first.provenance.get("faults")  # type: ignore[list-item]
    ]

    for members in _sweep_families(study):
        group = Study(members)
        plans = group.compile()  # round-invariant; compiled once per family
        total = members[0].trials
        block = policy.block_trials or members[0].trials
        prev_open: Optional[set] = None
        while True:
            active = _active_columns(plans, acc, policy)
            open_now = _open_cells(active, plans)
            if prev_open is not None and prev_open - open_now:
                converged = sorted(prev_open - open_now)
                _emit(
                    "cell_converged",
                    count=len(converged),
                    cells=[list(c) for c in converged[:20]],
                    trials=total,
                )
            prev_open = open_now
            if not active or total >= policy.max_trials:
                break
            stop = min(total + block, policy.max_trials)
            shard = group.run_extension(
                total, stop, active=active, workers=workers, scheduler=scheduler
            )
            for member in members:
                acc[member.name] = acc[member.name].merge(shard[member.name])
            deployments += int(shard.provenance.get("deployments", 0))  # type: ignore[arg-type]
            fault_reports.append(shard.provenance.get("faults"))  # type: ignore[arg-type]
            rounds.append(
                {
                    "scenarios": [m.name for m in members],
                    "trial_window": [total, stop],
                    "columns": len(active),
                    "open_cells": int(
                        sum(len(c) for sel in active.values() for c in sel)
                    ),
                }
            )
            _emit(
                "adaptive_round",
                scenarios=[m.name for m in members],
                window=[total, stop],
                open_cells=len(open_now),
            )
            total = stop
        if prev_open:
            # Cells still open at the cap: the cap, not convergence,
            # stopped them; downstream consumers can tell the difference.
            _emit(
                "adaptive_capped",
                count=len(prev_open),
                max_trials=policy.max_trials,
            )

    result = StudyResult(
        results=tuple(acc[s.name] for s in study.scenarios),
        provenance=dict(first.provenance),
    )
    allocation = trial_allocation(result)
    provenance = dict(first.provenance)
    provenance["deployments"] = deployments
    provenance["adaptive"] = {
        "policy": policy.to_dict(),
        "rounds": rounds,
        **allocation,
    }
    combined_faults = combine_fault_reports(fault_reports)
    if combined_faults is not None:
        provenance["faults"] = combined_faults
    return StudyResult(results=result.results, provenance=provenance)


def trial_allocation(result: StudyResult) -> Dict[str, object]:
    """Per-cell trial accounting of a (possibly adaptive) study result.

    ``trials_spent`` sums each sweep ``(size, K, curve, metric)``
    cell's actual sample size; ``fixed_trial_cost`` is what a uniform
    design needs for the same per-cell precision everywhere — every
    cell at ``max_cell_trials``, the count the slowest cell required.
    ``savings_vs_fixed`` is their ratio: 1.0 for a fixed-trial run,
    and the adaptive headline otherwise.
    """
    cells = 0
    trials_spent = 0
    max_cell = 0
    min_cell: Optional[int] = None
    for res in result.results:
        scenario = res.scenario
        if scenario.kind != "sweep":
            continue
        for si in range(scenario.num_sizes):
            for ri in range(len(scenario.ring_sizes_at(si))):
                for ci in range(len(scenario.curves_at(si))):
                    for mi in range(len(scenario.metrics)):
                        n = int(res.series_at(si, ri, ci, mi).size)
                        cells += 1
                        trials_spent += n
                        max_cell = max(max_cell, n)
                        min_cell = n if min_cell is None else min(min_cell, n)
    fixed = cells * max_cell
    return {
        "cells": cells,
        "trials_spent": trials_spent,
        "max_cell_trials": max_cell,
        "min_cell_trials": int(min_cell or 0),
        "fixed_trial_cost": fixed,
        "savings_vs_fixed": round(fixed / trials_spent, 3) if trials_spent else 1.0,
    }
