"""The :class:`Study` compiler: scenarios → shared-deployment sweep plan.

Compilation groups sweep scenarios by deployment family — equal
``(num_nodes, pool_size, ring_sizes, trials, seed)``, with sized
scenarios keyed on their canonical per-size expansion — and emits one
plan per group.  Executing a plan samples each ``(size, K, trial)``
world exactly once (rings, overlap counts, channel variables) and
evaluates *every* curve and metric of *every* member scenario on it:
the common-random-numbers structure of the PR 1 sweep engine,
generalized from "six connectivity curves" to arbitrary metric sets,
the disk channel, capture attacks, and (since the size axis) whole
growth sweeps in ``n``.

Work units are ``(group, size, K-column, trial-block)`` tuples.
Columns split into contiguous trial blocks whenever there are fewer
``(size, K)`` columns than workers
(:func:`repro.simulation.sweep.split_trial_blocks`), so a single-``K``
study still saturates the pool.  Because each deployment seed is
addressed by ``(size_index, ring_index, trial)`` for sized groups and
``(ring_index, trial)`` for plain ones, and per-trial values are
*assigned* (never reduced across blocks), results are bit-identical
for any worker count and any block layout.

:meth:`Study.run_extension` emits the same work units from an
arbitrary starting trial index — the incremental rounds of adaptive
trial allocation (:mod:`repro.study.adaptive`) and the shard unit of
multi-host execution.  Extension shards merge into accumulated results
via :meth:`~repro.study.result.ScenarioResult.merge`, bit-for-bit
equal to a one-shot run at the total trial count.

Protocol scenarios run through the ordinary per-trial engine with the
same determinism contract.
"""

from __future__ import annotations

import dataclasses
import functools
import json
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ParameterError
from repro.kernels import get_backend, resolve_backend_name, use_backend
from repro.simulation.engine import default_workers, run_batches, run_trials
from repro.simulation.scheduler import (
    SchedulerPolicy,
    resolve_scheduler_policy,
    run_units,
)
from repro.simulation.sweep import split_trial_blocks
from repro.study.metrics import (
    DeploymentEvaluator,
    evaluate_scenario,
    sample_deployment,
)
from repro.study.result import ScenarioResult, StudyResult
from repro.study.scenario import ClassMix, Scenario
from repro.utils.rng import grid_seed_sequence

__all__ = ["Study", "GroupPlan", "ActiveMap", "run_scenario"]


@dataclasses.dataclass(frozen=True)
class GroupPlan:
    """One deployment family and every scenario riding it.

    Internally every plan is a size grid: plain scenarios compile to a
    one-entry size axis.  ``sized`` records which seed addressing the
    family uses — ``(size_index, ring_index, trial)`` for declared size
    grids, the established ``(ring_index, trial)`` otherwise — so plain
    scenarios keep reproducing their historical streams bit-for-bit.
    """

    sizes: Tuple[int, ...]  # num_nodes per size-axis entry
    pool_sizes: Tuple[int, ...]  # pool size per size-axis entry
    # Per-size K grids, equal lengths; entries are ints, or per-class
    # int tuples when the family carries a class mix.
    ring_grid: Tuple[Tuple, ...]
    trials: int
    seed: int
    sized: bool
    q_mins: Tuple[int, ...]  # per-size min q over member curves
    needs_onoff: bool
    needs_disk: bool
    needs_capture: bool
    scenarios: Tuple[Scenario, ...]
    # Heterogeneous class mix shared by every member scenario (part of
    # the deployment key, so it is uniform within a group), or None.
    class_mix: Optional[ClassMix] = None
    # Resolved kernel-backend name for every kernel call of this plan's
    # work units (deployment sampling and metric evaluation).  Resolved
    # at compile time in the submitting process, so warm-pool workers
    # honor overrides made after the pool was spawned.
    kernel_backend: str = "reference"

    @property
    def num_sizes(self) -> int:
        return len(self.sizes)

    @property
    def num_rings(self) -> int:
        """Ring-axis length (uniform across sizes by scenario validation)."""
        return len(self.ring_grid[0])

    @property
    def num_nodes(self) -> int:
        """Node count of a plain (single-size) plan."""
        return self.sizes[0]

    @property
    def pool_size(self) -> int:
        return self.pool_sizes[0]

    @property
    def ring_sizes(self) -> Tuple[int, ...]:
        return self.ring_grid[0]

    @property
    def q_min(self) -> int:
        return min(self.q_mins)

    @property
    def num_columns(self) -> int:
        """Value columns per deployment (scenario x curve x metric)."""
        return sum(s.num_curves * len(s.metrics) for s in self.scenarios)

    def column_offsets(self) -> List[int]:
        """Starting column of each member scenario."""
        offsets, col = [], 0
        for s in self.scenarios:
            offsets.append(col)
            col += s.num_curves * len(s.metrics)
        return offsets


def _plan_group(scenarios: Sequence[Scenario]) -> GroupPlan:
    head = scenarios[0]
    num_sizes = head.num_sizes
    declared = {
        s.kernel_backend for s in scenarios if s.kernel_backend is not None
    }
    if len(declared) > 1:
        names = sorted(s.name for s in scenarios)
        raise ParameterError(
            f"scenarios {names} share one deployment family but declare "
            f"different kernel backends {sorted(declared)}; backends are "
            "result-identical, so pick one (or drop the field)"
        )
    # Resolve AND load in the submitting process: an unavailable backend
    # (e.g. numba without the dependency) must fail here, not deep in a
    # pool worker.
    backend_name = resolve_backend_name(declared.pop() if declared else None)
    get_backend(backend_name)
    return GroupPlan(
        kernel_backend=backend_name,
        sizes=head.sizes,
        pool_sizes=tuple(head.pool_size_at(si) for si in range(num_sizes)),
        ring_grid=tuple(head.ring_sizes_at(si) for si in range(num_sizes)),
        trials=head.trials,
        seed=head.seed,
        sized=head.sized,
        q_mins=tuple(
            min(q for s in scenarios for q, _ in s.curves_at(si))
            for si in range(num_sizes)
        ),
        needs_onoff=any(s.channel == "onoff" for s in scenarios),
        needs_disk=any(s.channel == "disk" for s in scenarios),
        needs_capture=any(s.needs_capture for s in scenarios),
        scenarios=tuple(scenarios),
        class_mix=head.classes,
    )


#: Per-column curve activity: ``(group, size, ring) -> `` one tuple of
#: active curve indices per member scenario (in plan order).  ``None``
#: means every curve of every scenario.
ActiveMap = Dict[Tuple[int, int, int], Tuple[Tuple[int, ...], ...]]


def _group_block(
    plans: Tuple[GroupPlan, ...],
    active: Optional[ActiveMap],
    block: Tuple[int, int, int, int, int],
) -> np.ndarray:
    """Trials ``[start, stop)`` of one (group, size, K-column); all columns.

    ``trial`` indices are absolute — the deployment seed is always
    ``(size_index, ring_index, trial)`` (or ``(ring_index, trial)`` for
    plain groups) no matter which window the block belongs to, so an
    extension round samples exactly the worlds a one-shot run at the
    larger trial count would have.  With an *active* map, only the
    listed curves of each scenario are evaluated; the other cells hold
    ``NaN``.  Skipping cells never changes evaluated values: the
    deployment is sampled identically (one rng draw order, fixed by the
    plan's channel/capture needs and ``q_min``), and the monotone
    lattice deduction is exact, so each cell's value is independent of
    which other cells were computed.
    """
    group_index, size_index, ring_index, start, stop = block
    plan = plans[group_index]
    ring = plan.ring_grid[size_index][ring_index]
    out = np.empty((stop - start, plan.num_columns), dtype=np.float64)
    curve_sel = None if active is None else active[(group_index, size_index, ring_index)]
    with use_backend(plan.kernel_backend):
        for row, trial in enumerate(range(start, stop)):
            if plan.sized:
                seed_seq = grid_seed_sequence(plan.seed, size_index, ring_index, trial)
            else:
                seed_seq = grid_seed_sequence(plan.seed, ring_index, trial)
            rng = np.random.default_rng(seed_seq)
            dep = sample_deployment(
                plan.sizes[size_index],
                plan.pool_sizes[size_index],
                ring,
                plan.q_mins[size_index],
                rng,
                needs_onoff=plan.needs_onoff,
                needs_disk=plan.needs_disk,
                needs_capture=plan.needs_capture,
                class_mix=plan.class_mix,
            )
            evaluator = DeploymentEvaluator(dep)
            ledgers: Dict = {}  # shared deduction state across member scenarios
            col = 0
            for sc_index, scenario in enumerate(plan.scenarios):
                curves = scenario.curves_at(size_index)
                width = len(curves) * len(scenario.metrics)
                if curve_sel is None:
                    values = evaluate_scenario(evaluator, scenario, ledgers, curves=curves)
                else:
                    chosen = curve_sel[sc_index]
                    values = np.full((len(curves), len(scenario.metrics)), np.nan)
                    if chosen:
                        values[list(chosen), :] = evaluate_scenario(
                            evaluator,
                            scenario,
                            ledgers,
                            curves=tuple(curves[ci] for ci in chosen),
                        )
                out[row, col : col + width] = values.reshape(-1)
                col += width
    return out


def _slice_scenario_results(
    plans: Tuple[GroupPlan, ...],
    tensors: Sequence[np.ndarray],
    trial_offset: int,
    trials: Optional[int] = None,
) -> Dict[str, ScenarioResult]:
    """Slice each scenario's columns out of its group tensor.

    *trials* overrides the scenario's declared trial count in the
    embedded scenario (extension shards cover a window, not the full
    axis); the tensors' trial extent must match it.
    """
    by_name: Dict[str, ScenarioResult] = {}
    for plan, tensor in zip(plans, tensors):
        span = plan.trials if trials is None else trials
        for scenario, offset in zip(plan.scenarios, plan.column_offsets()):
            width = scenario.num_curves * len(scenario.metrics)
            values = tensor[:, :, :, offset : offset + width].reshape(
                plan.num_sizes,
                plan.num_rings,
                span,
                scenario.num_curves,
                len(scenario.metrics),
            )
            if not scenario.sized:
                values = values[0]
            embedded = scenario if trials is None else scenario.with_trials(span)
            by_name[scenario.name] = ScenarioResult(
                scenario=embedded,
                values=np.ascontiguousarray(values),
                metric_labels=scenario.metric_labels(),
                trial_offset=trial_offset,
            )
    return by_name


def _run_protocol(scenario: Scenario, workers: Optional[int]) -> ScenarioResult:
    from repro.study.protocols import get_protocol

    spec = get_protocol(scenario.protocol)
    trial_fn = spec.build(scenario)
    outcomes = run_trials(trial_fn, scenario.trials, seed=scenario.seed, workers=workers)
    values = np.asarray(outcomes, dtype=np.float64).reshape(
        1, scenario.trials, 1, len(spec.value_names)
    )
    return ScenarioResult(
        scenario=scenario, values=values, metric_labels=tuple(spec.value_names)
    )


@dataclasses.dataclass(frozen=True)
class Study:
    """One or more scenarios compiled into a shared-deployment plan."""

    scenarios: Tuple[Scenario, ...]

    def __post_init__(self) -> None:
        scenarios = tuple(
            s if isinstance(s, Scenario) else Scenario.from_dict(s)
            for s in self.scenarios
        )
        object.__setattr__(self, "scenarios", scenarios)
        if not scenarios:
            raise ParameterError("a study needs at least one scenario")
        names = [s.name for s in scenarios]
        if len(set(names)) != len(names):
            raise ParameterError(f"duplicate scenario names in study: {names}")

    # -- compilation ---------------------------------------------------

    def compile(self) -> List[GroupPlan]:
        """Group sweep scenarios by deployment family (order-preserving)."""
        groups: Dict[Tuple, List[Scenario]] = {}
        for scenario in self.scenarios:
            if scenario.kind != "sweep":
                continue
            groups.setdefault(scenario.deployment_key(), []).append(scenario)
        return [_plan_group(members) for members in groups.values()]

    # -- execution -----------------------------------------------------

    def run(
        self,
        workers: Optional[int] = None,
        scheduler: Optional[SchedulerPolicy] = None,
    ) -> StudyResult:
        """Run every scenario; *scheduler* opts into per-unit supervision.

        With a :class:`~repro.simulation.scheduler.SchedulerPolicy`
        (explicit, or implied by ``REPRO_CHAOS``), work units run under
        the fault-tolerant supervisor: failed units retry with backoff,
        stragglers may be speculatively re-executed, and units dead
        after exhausting retries degrade to ``NaN`` cells plus a
        ``"faults"`` provenance entry instead of failing the run.
        Determinism makes the supervised result bit-identical to the
        plain path whenever every unit completes.  Protocol scenarios
        run through the ordinary per-trial engine either way.
        """
        effective = default_workers() if workers is None else max(1, int(workers))
        plans = tuple(self.compile())
        policy = resolve_scheduler_policy(scheduler)

        total_columns = sum(p.num_sizes * p.num_rings for p in plans)
        blocks: List[Tuple[int, int, int, int, int]] = []
        for gi, plan in enumerate(plans):
            n_rings = plan.num_rings
            for column, start, stop in split_trial_blocks(
                plan.num_sizes * n_rings, plan.trials, effective, total_columns
            ):
                blocks.append(
                    (gi, column // n_rings, column % n_rings, start, stop)
                )

        block_fn = functools.partial(_group_block, plans, None)
        if policy is None:
            block_values = run_batches(block_fn, blocks, effective)
            report = None
        else:
            block_values, report = run_units(
                block_fn, blocks, workers=effective, policy=policy
            )

        # Assemble the per-group value tensors (sizes, rings, trials,
        # columns).  Supervised runs seed with NaN so dead units leave
        # unevaluated cells the merge substrate understands.
        tensors: List[np.ndarray] = [
            np.empty((p.num_sizes, p.num_rings, p.trials, p.num_columns))
            if policy is None
            else np.full((p.num_sizes, p.num_rings, p.trials, p.num_columns), np.nan)
            for p in plans
        ]
        for (gi, si, ri, start, stop), values in zip(blocks, block_values):
            if values is None:
                continue  # dead-lettered unit: cells stay NaN
            tensors[gi][si, ri, start:stop, :] = values

        by_name = _slice_scenario_results(plans, tensors, trial_offset=0)

        for scenario in self.scenarios:
            if scenario.kind == "protocol":
                by_name[scenario.name] = _run_protocol(scenario, effective)

        provenance: Dict[str, object] = {
            "engine": "study/v1",
            "workers": effective,
            "kernel_backends": sorted({p.kernel_backend for p in plans}),
            "groups": [self._group_provenance(plan) for plan in plans],
            "units": len(blocks),
            "deployments": int(
                sum(p.num_sizes * p.num_rings * p.trials for p in plans)
            ),
        }
        if policy is not None and report is not None:
            provenance["scheduler"] = policy.to_dict()
            # The window stamp qualifies per-round positional unit
            # indices when reports from several rounds/shards are folded
            # (see combine_fault_reports).
            faults = report.to_dict()
            faults["window"] = [0, max((p.trials for p in plans), default=0)]
            provenance["faults"] = faults
        return StudyResult(
            results=tuple(by_name[s.name] for s in self.scenarios),
            provenance=provenance,
        )

    def run_extension(
        self,
        trial_start: int,
        trial_stop: int,
        active: Optional[ActiveMap] = None,
        workers: Optional[int] = None,
        scheduler: Optional[SchedulerPolicy] = None,
    ) -> StudyResult:
        """Run only trials ``[trial_start, trial_stop)`` of every group.

        The incremental work-unit emitter behind adaptive allocation
        and sharded execution: blocks carry *absolute* trial indices
        into the established ``(size_index, ring_index, trial)``
        SeedSequence addressing, so extending a result from ``t`` to
        ``t'`` trials and merging
        (:meth:`~repro.study.result.ScenarioResult.merge`) is
        bit-for-bit identical to a one-shot run at ``t'`` trials.

        *active* optionally restricts work per ``(group, size,
        K-column)``: a missing key (or all-empty curve tuples) skips
        the column's deployments entirely, and listed-but-partial
        curve tuples evaluate only those curves (the rest of the
        column's cells hold ``NaN``).  The returned shard's scenarios
        carry ``trials == trial_stop - trial_start`` and its results
        ``trial_offset == trial_start``.
        """
        for scenario in self.scenarios:
            if scenario.kind == "protocol":
                raise ParameterError(
                    f"trial extension supports sweep scenarios only; "
                    f"{scenario.name!r} is a protocol scenario"
                )
        if trial_start < 0:
            raise ParameterError(f"trial_start must be >= 0, got {trial_start}")
        if trial_stop <= trial_start:
            raise ParameterError(
                f"empty extension window [{trial_start}, {trial_stop}); "
                "trial_stop must exceed trial_start"
            )
        effective = default_workers() if workers is None else max(1, int(workers))
        plans = tuple(self.compile())
        span = trial_stop - trial_start

        scheduled: List[Tuple[int, int, int]] = []
        for gi, plan in enumerate(plans):
            for si in range(plan.num_sizes):
                for ri in range(plan.num_rings):
                    key = (gi, si, ri)
                    if active is None:
                        scheduled.append(key)
                        continue
                    sel = active.get(key)
                    if sel is None or not any(sel):
                        continue
                    if len(sel) != len(plan.scenarios):
                        raise ParameterError(
                            f"active[{key}] must list curve indices for all "
                            f"{len(plan.scenarios)} member scenarios, got {len(sel)}"
                        )
                    for scenario, chosen in zip(plan.scenarios, sel):
                        valid = range(len(scenario.curves_at(si)))
                        bad = [ci for ci in chosen if ci not in valid]
                        if bad:
                            raise ParameterError(
                                f"active[{key}] curve indices {bad} out of "
                                f"range for scenario {scenario.name!r}"
                            )
                    scheduled.append(key)

        spans = [
            (start, stop)
            for _, start, stop in split_trial_blocks(
                1, trial_stop, effective, max(len(scheduled), 1), start=trial_start
            )
        ]
        blocks: List[Tuple[int, int, int, int, int]] = [
            (gi, si, ri, start, stop)
            for gi, si, ri in scheduled
            for start, stop in spans
        ]

        block_fn = functools.partial(_group_block, plans, active)
        policy = resolve_scheduler_policy(scheduler)
        if policy is None:
            block_values = run_batches(block_fn, blocks, effective)
            report = None
        else:
            block_values, report = run_units(
                block_fn, blocks, workers=effective, policy=policy
            )

        tensors = [
            np.full((p.num_sizes, p.num_rings, span, p.num_columns), np.nan)
            for p in plans
        ]
        for (gi, si, ri, start, stop), values in zip(blocks, block_values):
            if values is None:
                continue  # dead-lettered unit: cells stay NaN
            tensors[gi][si, ri, start - trial_start : stop - trial_start, :] = values

        by_name = _slice_scenario_results(
            plans, tensors, trial_offset=trial_start, trials=span
        )
        provenance: Dict[str, object] = {
            "engine": "study/v1",
            "workers": effective,
            "kernel_backends": sorted({p.kernel_backend for p in plans}),
            "trial_window": [trial_start, trial_stop],
            "units": len(blocks),
            "deployments": int(len(scheduled) * span),
        }
        if policy is not None and report is not None:
            provenance["scheduler"] = policy.to_dict()
            faults = report.to_dict()
            faults["window"] = [trial_start, trial_stop]
            provenance["faults"] = faults
        return StudyResult(
            results=tuple(by_name[s.name] for s in self.scenarios),
            provenance=provenance,
        )

    @staticmethod
    def _group_provenance(plan: GroupPlan) -> Dict[str, object]:
        out: Dict[str, object] = {
            "scenarios": [s.name for s in plan.scenarios],
            "trials": plan.trials,
            "seed": plan.seed,
            "kernel_backend": plan.kernel_backend,
        }
        if plan.class_mix is not None:
            out["classes"] = plan.class_mix.to_dict()
        if plan.sized:
            out.update(
                {
                    "num_nodes_grid": list(plan.sizes),
                    "pool_sizes": list(plan.pool_sizes),
                    "ring_sizes": [list(rings) for rings in plan.ring_grid],
                    "q_mins": list(plan.q_mins),
                }
            )
        else:
            out.update(
                {
                    "num_nodes": plan.num_nodes,
                    "pool_size": plan.pool_size,
                    "ring_sizes": list(plan.ring_sizes),
                    "q_min": plan.q_min,
                }
            )
        return out

    # -- JSON round-trip ----------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {"scenarios": [s.to_dict() for s in self.scenarios]}

    @classmethod
    def from_dict(cls, data: Union[Dict[str, object], Sequence, None]) -> "Study":
        """Accept ``{"scenarios": [...]}``, a bare list, or one scenario."""
        if isinstance(data, dict) and "scenarios" in data:
            unknown = set(data) - {"scenarios"}
            if unknown:
                raise ParameterError(
                    f"unknown study fields {sorted(unknown)}; expected 'scenarios'"
                )
            raw = data["scenarios"]
        elif isinstance(data, dict):
            raw = [data]
        elif isinstance(data, Sequence) and not isinstance(data, str):
            raw = list(data)
        else:
            raise ParameterError(
                "study JSON must be a scenario object, a list of scenarios, "
                f"or {{'scenarios': [...]}}; got {type(data).__name__}"
            )
        if not raw:
            raise ParameterError("a study needs at least one scenario")
        return cls(scenarios=tuple(Scenario.from_dict(s) for s in raw))

    def to_json(self, **dumps_kwargs: object) -> str:
        dumps_kwargs.setdefault("indent", 2)
        dumps_kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **dumps_kwargs)  # type: ignore[arg-type]

    @classmethod
    def from_json(cls, text: str) -> "Study":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ParameterError(f"study JSON does not parse: {exc}") from exc
        return cls.from_dict(data)


def run_scenario(
    scenario: Scenario,
    workers: Optional[int] = None,
    scheduler: Optional[SchedulerPolicy] = None,
) -> ScenarioResult:
    """Run a single scenario and return its result directly."""
    return Study((scenario,)).run(workers=workers, scheduler=scheduler)[
        scenario.name
    ]
