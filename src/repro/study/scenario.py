"""The :class:`Scenario` type: one experiment as a frozen config.

A scenario pins everything needed to reproduce an experiment: the
deployment family (``num_nodes``, ``pool_size``, the ``K`` grid,
``trials``, ``seed``), the channel model, the ``(q, p)`` curve grid,
and the metric set.  It validates eagerly at construction and
round-trips through JSON (``to_json`` / ``from_json``), so a scenario
file with no accompanying Python is a complete experiment definition.

Two scenario kinds exist:

* ``"sweep"`` (default) — runs on the shared-deployment sweep engine;
  every metric is derived from the same candidate-pair arrays.
* ``"protocol"`` — a named bespoke trial protocol (see
  :mod:`repro.study.protocols`) for workloads whose sampling cannot be
  expressed as a post-filter (e.g. the Lemma 5 coupled-ring pair).
"""

from __future__ import annotations

import dataclasses
import json
import math
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ParameterError
from repro.utils.validation import (
    check_key_parameters,
    check_nonnegative_int,
    check_positive_int,
    check_probability,
)

__all__ = ["CHANNEL_KINDS", "METRIC_KINDS", "MetricSpec", "Scenario"]

Curve = Tuple[int, float]

#: Channel models a sweep scenario can realize per curve.
CHANNEL_KINDS = ("onoff", "disk")

#: Metric kinds and the extra parameter each one reads.
METRIC_KINDS: Dict[str, Optional[str]] = {
    "connectivity": None,
    "k_connectivity": "k",
    "min_degree": "k",
    "degree_count": "h",
    "giant_fraction": None,
    "attack_compromised": "captured",
    "attack_evaluated": "captured",
    "survivor_connectivity": "captured",
    "resilient_connectivity": "captured",
}

_CAPTURE_KINDS = (
    "attack_compromised",
    "attack_evaluated",
    "survivor_connectivity",
    "resilient_connectivity",
)

# Disk curves must keep the transmission radius at or below 1/2 so the
# torus marginal is exactly ``pi * r**2 = p``.
_DISK_MAX_PROB = math.pi / 4.0


@dataclasses.dataclass(frozen=True)
class MetricSpec:
    """One metric evaluated per deployment and curve.

    ``kind`` selects the statistic; ``k`` / ``h`` / ``captured``
    parameterize it (only the parameter named in :data:`METRIC_KINDS`
    is read; the others must stay at their defaults).
    """

    kind: str
    k: int = 1
    h: int = 0
    captured: int = 0

    def __post_init__(self) -> None:
        if self.kind not in METRIC_KINDS:
            known = ", ".join(sorted(METRIC_KINDS))
            raise ParameterError(
                f"unknown metric kind {self.kind!r}; known kinds: {known}"
            )
        check_positive_int(self.k, "k")
        check_nonnegative_int(self.h, "h")
        check_nonnegative_int(self.captured, "captured")
        read = METRIC_KINDS[self.kind]
        for param, default in (("k", 1), ("h", 0), ("captured", 0)):
            if param != read and getattr(self, param) != default:
                raise ParameterError(
                    f"metric kind {self.kind!r} does not read {param!r} "
                    f"(got {param}={getattr(self, param)}); it accepts "
                    + (f"only {read!r}" if read else "no parameters")
                )

    @property
    def label(self) -> str:
        """Stable human/JSON label, e.g. ``k_connectivity[k=2]``."""
        param = METRIC_KINDS[self.kind]
        if param is None:
            return self.kind
        return f"{self.kind}[{param}={getattr(self, param)}]"

    @property
    def is_indicator(self) -> bool:
        """Whether per-trial values are 0/1 (Bernoulli-estimable)."""
        return self.kind in (
            "connectivity",
            "k_connectivity",
            "min_degree",
            "survivor_connectivity",
            "resilient_connectivity",
        )

    @property
    def needs_capture(self) -> bool:
        return self.kind in _CAPTURE_KINDS

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"kind": self.kind}
        param = METRIC_KINDS[self.kind]
        if param is not None:
            out[param] = getattr(self, param)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "MetricSpec":
        if not isinstance(data, Mapping):
            raise ParameterError(
                f"metric must be a mapping with a 'kind' key, got {data!r}"
            )
        unknown = set(data) - {"kind", "k", "h", "captured"}
        if unknown:
            raise ParameterError(
                f"unknown metric fields {sorted(unknown)} in {dict(data)!r}"
            )
        if "kind" not in data:
            raise ParameterError(f"metric is missing 'kind': {dict(data)!r}")
        return cls(
            kind=str(data["kind"]),
            k=int(data.get("k", 1)),  # type: ignore[arg-type]
            h=int(data.get("h", 0)),  # type: ignore[arg-type]
            captured=int(data.get("captured", 0)),  # type: ignore[arg-type]
        )


_SCENARIO_FIELDS = {
    "name",
    "num_nodes",
    "pool_size",
    "ring_sizes",
    "curves",
    "metrics",
    "trials",
    "seed",
    "channel",
    "kind",
    "protocol",
    "protocol_params",
}


@dataclasses.dataclass(frozen=True)
class Scenario:
    """A frozen, JSON-round-trippable experiment description.

    Attributes
    ----------
    name:
        Identifier used to look the scenario's result up in a
        :class:`~repro.study.result.StudyResult`.
    num_nodes, pool_size:
        ``n`` and ``P`` of the key-predistribution model.
    ring_sizes:
        The ``K`` grid (one deployment family per ``K``).
    curves:
        ``(q, p)`` post-filters evaluated on every deployment.
    metrics:
        Metric set derived per deployment and curve.
    trials, seed:
        Monte Carlo repetitions and the deterministic root seed.
    channel:
        ``"onoff"`` (Bernoulli(p) per candidate edge, nested thinning)
        or ``"disk"`` (torus disk model; ``p`` is the matched marginal
        ``pi * r**2``, thresholds nested in ``r``).
    kind:
        ``"sweep"`` or ``"protocol"``.
    protocol, protocol_params:
        For ``kind="protocol"``: registered protocol name and its
        parameters (see :mod:`repro.study.protocols`).
    """

    name: str
    num_nodes: int
    pool_size: int
    trials: int
    ring_sizes: Tuple[int, ...] = ()
    curves: Tuple[Curve, ...] = ()
    metrics: Tuple[MetricSpec, ...] = ()
    seed: int = 0
    channel: str = "onoff"
    kind: str = "sweep"
    protocol: Optional[str] = None
    protocol_params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ParameterError(f"scenario name must be a non-empty string, got {self.name!r}")
        check_positive_int(self.num_nodes, "num_nodes")
        check_positive_int(self.pool_size, "pool_size")
        check_positive_int(self.trials, "trials")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ParameterError(f"seed must be an int, got {self.seed!r}")
        if self.seed < 0:
            raise ParameterError(f"seed must be >= 0, got {self.seed}")
        if self.kind not in ("sweep", "protocol"):
            raise ParameterError(
                f"unknown scenario kind {self.kind!r}; use 'sweep' or 'protocol'"
            )
        if isinstance(self.protocol_params, Mapping):
            object.__setattr__(
                self, "protocol_params", tuple(sorted(self.protocol_params.items()))
            )
        else:
            object.__setattr__(
                self,
                "protocol_params",
                tuple((str(k), v) for k, v in self.protocol_params),
            )
        if self.kind == "protocol":
            self._validate_protocol()
            return
        self._validate_sweep()

    def _validate_protocol(self) -> None:
        if not self.protocol:
            raise ParameterError(
                "protocol scenarios need a 'protocol' name "
                "(see repro.study.protocols.list_protocols())"
            )
        if self.ring_sizes or self.curves or self.metrics:
            raise ParameterError(
                "protocol scenarios take parameters via 'protocol_params'; "
                "ring_sizes/curves/metrics must be empty"
            )
        from repro.study.protocols import get_protocol

        get_protocol(self.protocol)  # raises ExperimentError if unknown

    def _validate_sweep(self) -> None:
        if self.protocol is not None or self.protocol_params:
            raise ParameterError(
                "sweep scenarios must not set 'protocol'/'protocol_params'"
            )
        if self.channel not in CHANNEL_KINDS:
            known = ", ".join(CHANNEL_KINDS)
            raise ParameterError(
                f"unknown channel {self.channel!r}; known channels: {known}"
            )
        if not self.ring_sizes:
            raise ParameterError("ring_sizes must be non-empty")
        if not self.curves:
            raise ParameterError("curves must be non-empty")
        if not self.metrics:
            raise ParameterError("metrics must be non-empty")
        object.__setattr__(
            self, "ring_sizes", tuple(int(r) for r in self.ring_sizes)
        )
        try:
            curves = tuple((int(q), float(p)) for q, p in self.curves)
        except (TypeError, ValueError) as exc:
            raise ParameterError(
                f"curves must be (q, p) pairs, got {self.curves!r}"
            ) from exc
        object.__setattr__(self, "curves", curves)
        object.__setattr__(
            self,
            "metrics",
            tuple(
                m if isinstance(m, MetricSpec) else MetricSpec.from_dict(m)
                for m in self.metrics
            ),
        )
        labels = [m.label for m in self.metrics]
        if len(set(labels)) != len(labels):
            raise ParameterError(f"duplicate metrics in scenario: {labels}")
        for q, p in self.curves:
            check_probability(p, "channel_prob", allow_zero=False)
            if self.channel == "disk" and p > _DISK_MAX_PROB:
                raise ParameterError(
                    f"disk channel marginal p={p} exceeds pi/4 ~ "
                    f"{_DISK_MAX_PROB:.4f} (radius would leave the exact-"
                    "marginal regime r <= 1/2)"
                )
            for ring in self.ring_sizes:
                check_key_parameters(ring, self.pool_size, q)
        for metric in self.metrics:
            if metric.needs_capture and metric.captured > self.num_nodes - 2:
                raise ParameterError(
                    f"metric {metric.label} captures {metric.captured} of "
                    f"{self.num_nodes} nodes; at least two must survive"
                )
            if metric.kind == "k_connectivity" and metric.k > 1 and self.num_nodes < metric.k + 1:
                raise ParameterError(
                    f"k-connectivity with k={metric.k} needs num_nodes > k"
                )

    # -- deployment grouping ------------------------------------------

    def deployment_key(self) -> Tuple:
        """Scenarios with equal keys share sampled deployments."""
        return (self.num_nodes, self.pool_size, self.ring_sizes, self.trials, self.seed)

    @property
    def needs_capture(self) -> bool:
        return any(m.needs_capture for m in self.metrics)

    def metric_labels(self) -> Tuple[str, ...]:
        return tuple(m.label for m in self.metrics)

    # -- JSON round-trip ----------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "kind": self.kind,
            "num_nodes": self.num_nodes,
            "pool_size": self.pool_size,
            "trials": self.trials,
            "seed": self.seed,
        }
        if self.kind == "protocol":
            out["protocol"] = self.protocol
            out["protocol_params"] = dict(self.protocol_params)
            return out
        out.update(
            {
                "channel": self.channel,
                "ring_sizes": list(self.ring_sizes),
                "curves": [[q, p] for q, p in self.curves],
                "metrics": [m.to_dict() for m in self.metrics],
            }
        )
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Scenario":
        if not isinstance(data, Mapping):
            raise ParameterError(
                f"scenario must be a mapping, got {type(data).__name__}"
            )
        unknown = set(data) - _SCENARIO_FIELDS
        if unknown:
            raise ParameterError(
                f"unknown scenario fields {sorted(unknown)}; "
                f"valid fields: {sorted(_SCENARIO_FIELDS)}"
            )
        missing = {"name", "num_nodes", "pool_size", "trials"} - set(data)
        if missing:
            raise ParameterError(
                f"scenario is missing required fields {sorted(missing)}"
            )
        curves = data.get("curves", ())
        if not isinstance(curves, Sequence) or isinstance(curves, str):
            raise ParameterError(f"curves must be a list of [q, p] pairs, got {curves!r}")
        metrics_raw = data.get("metrics", ())
        if not isinstance(metrics_raw, Sequence) or isinstance(metrics_raw, str):
            raise ParameterError(f"metrics must be a list of mappings, got {metrics_raw!r}")
        metrics = tuple(
            m if isinstance(m, MetricSpec) else MetricSpec.from_dict(m)
            for m in metrics_raw
        )
        protocol_params = data.get("protocol_params", {})
        if not isinstance(protocol_params, Mapping):
            raise ParameterError(
                f"protocol_params must be a mapping, got {protocol_params!r}"
            )
        try:
            return cls(
                name=str(data["name"]),
                num_nodes=int(data["num_nodes"]),  # type: ignore[arg-type]
                pool_size=int(data["pool_size"]),  # type: ignore[arg-type]
                trials=int(data["trials"]),  # type: ignore[arg-type]
                ring_sizes=tuple(int(r) for r in data.get("ring_sizes", ())),  # type: ignore[union-attr]
                curves=tuple((int(q), float(p)) for q, p in curves),
                metrics=metrics,
                seed=int(data.get("seed", 0)),  # type: ignore[arg-type]
                channel=str(data.get("channel", "onoff")),
                kind=str(data.get("kind", "sweep")),
                protocol=data.get("protocol"),  # type: ignore[arg-type]
                protocol_params=protocol_params,  # type: ignore[arg-type]
            )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, ParameterError):
                raise
            raise ParameterError(f"malformed scenario config: {exc}") from exc

    def to_json(self, **dumps_kwargs: object) -> str:
        dumps_kwargs.setdefault("indent", 2)
        dumps_kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **dumps_kwargs)  # type: ignore[arg-type]

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ParameterError(f"scenario JSON does not parse: {exc}") from exc
        return cls.from_dict(data)
