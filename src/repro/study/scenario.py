"""The :class:`Scenario` type: one experiment as a frozen config.

A scenario pins everything needed to reproduce an experiment: the
deployment family (``num_nodes``, ``pool_size``, the ``K`` grid,
``trials``, ``seed``), the channel model, the ``(q, p)`` curve grid,
and the metric set.  It validates eagerly at construction and
round-trips through JSON (``to_json`` / ``from_json``), so a scenario
file with no accompanying Python is a complete experiment definition.

Two scenario kinds exist:

* ``"sweep"`` (default) — runs on the shared-deployment sweep engine;
  every metric is derived from the same candidate-pair arrays.
* ``"protocol"`` — a named bespoke trial protocol (see
  :mod:`repro.study.protocols`) for workloads whose sampling cannot be
  expressed as a post-filter (e.g. the Lemma 5 coupled-ring pair).

Size axis
---------
Growth sweeps (the zero–one law, any asymptotics-in-``n`` check) are
declared with ``num_nodes_grid`` instead of ``num_nodes``: one scenario
then spans a whole grid of network sizes.  ``pool_size``,
``ring_sizes``, and ``curves`` may each be given once (shared by every
size) or per size (a list with one entry per grid point, e.g. the
alpha-offset ring sizes the zero-one law solves per ``n``).  Per-size
``ring_sizes``/``curves`` lists must all have the same length, so the
result tensor stays rectangular: ``values[s, r, t, c, m]``.  Each
``(size, K, trial)`` cell is sampled exactly once, with the
deterministic seed ``SeedSequence(seed, spawn_key=(size_index,
ring_index, trial))``; plain (un-sized) scenarios keep the established
``(ring_index, trial)`` addressing, so existing results are unchanged.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import KernelError, ParameterError
from repro.utils.validation import (
    check_key_parameters,
    check_nonnegative_int,
    check_positive_int,
    check_probability,
)

__all__ = ["CHANNEL_KINDS", "METRIC_KINDS", "ClassMix", "MetricSpec", "Scenario"]

Curve = Tuple[int, float]

#: Channel models a sweep scenario can realize per curve.
CHANNEL_KINDS = ("onoff", "disk")

#: Metric kinds and the extra parameter each one reads.
METRIC_KINDS: Dict[str, Optional[str]] = {
    "connectivity": None,
    "k_connectivity": "k",
    "min_degree": "k",
    "degree_count": "h",
    "giant_fraction": None,
    "attack_compromised": "captured",
    "attack_evaluated": "captured",
    "survivor_connectivity": "captured",
    "resilient_connectivity": "captured",
}

_CAPTURE_KINDS = (
    "attack_compromised",
    "attack_evaluated",
    "survivor_connectivity",
    "resilient_connectivity",
)

# Disk curves must keep the transmission radius at or below 1/2 so the
# torus marginal is exactly ``pi * r**2 = p``.
_DISK_MAX_PROB = math.pi / 4.0


@dataclasses.dataclass(frozen=True)
class MetricSpec:
    """One metric evaluated per deployment and curve.

    ``kind`` selects the statistic; ``k`` / ``h`` / ``captured``
    parameterize it (only the parameter named in :data:`METRIC_KINDS`
    is read; the others must stay at their defaults).
    """

    kind: str
    k: int = 1
    h: int = 0
    captured: int = 0

    def __post_init__(self) -> None:
        if self.kind not in METRIC_KINDS:
            known = ", ".join(sorted(METRIC_KINDS))
            raise ParameterError(
                f"unknown metric kind {self.kind!r}; known kinds: {known}"
            )
        check_positive_int(self.k, "k")
        check_nonnegative_int(self.h, "h")
        check_nonnegative_int(self.captured, "captured")
        read = METRIC_KINDS[self.kind]
        for param, default in (("k", 1), ("h", 0), ("captured", 0)):
            if param != read and getattr(self, param) != default:
                raise ParameterError(
                    f"metric kind {self.kind!r} does not read {param!r} "
                    f"(got {param}={getattr(self, param)}); it accepts "
                    + (f"only {read!r}" if read else "no parameters")
                )

    @property
    def label(self) -> str:
        """Stable human/JSON label, e.g. ``k_connectivity[k=2]``."""
        param = METRIC_KINDS[self.kind]
        if param is None:
            return self.kind
        return f"{self.kind}[{param}={getattr(self, param)}]"

    @property
    def is_indicator(self) -> bool:
        """Whether per-trial values are 0/1 (Bernoulli-estimable)."""
        return self.kind in (
            "connectivity",
            "k_connectivity",
            "min_degree",
            "survivor_connectivity",
            "resilient_connectivity",
        )

    @property
    def needs_capture(self) -> bool:
        return self.kind in _CAPTURE_KINDS

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"kind": self.kind}
        param = METRIC_KINDS[self.kind]
        if param is not None:
            out[param] = getattr(self, param)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "MetricSpec":
        if not isinstance(data, Mapping):
            raise ParameterError(
                f"metric must be a mapping with a 'kind' key, got {data!r}"
            )
        unknown = set(data) - {"kind", "k", "h", "captured"}
        if unknown:
            raise ParameterError(
                f"unknown metric fields {sorted(unknown)} in {dict(data)!r}"
            )
        if "kind" not in data:
            raise ParameterError(f"metric is missing 'kind': {dict(data)!r}")
        return cls(
            kind=str(data["kind"]),
            k=int(data.get("k", 1)),  # type: ignore[arg-type]
            h=int(data.get("h", 0)),  # type: ignore[arg-type]
            captured=int(data.get("captured", 0)),  # type: ignore[arg-type]
        )


@dataclasses.dataclass(frozen=True)
class ClassMix:
    """Heterogeneous key predistribution: node classes + channel matrix.

    The Eletreby–Yağan generalization (arXiv:1604.00460, 1908.09826)
    draws every node a class ``i`` with probability ``mu[i]`` and turns
    each candidate edge between a class-``i`` and a class-``j`` node on
    with probability ``channel_probs[i][j]``.  A scenario curve's ``p``
    acts as a scalar multiplier on the matrix (effective pair
    probability ``p * channel_probs[i][j]``), so the whole ``(q, p)``
    curve grid still rides one sampled world via nested thinning and
    the monotone lattice deduction stays exact.  Per-class ring sizes
    live in the scenario's ``ring_sizes`` entries (each entry becomes a
    per-class ``[K_1, ..., K_C]`` vector when a class mix is declared).
    """

    mu: Tuple[float, ...]
    channel_probs: Tuple[Tuple[float, ...], ...]

    def __post_init__(self) -> None:
        try:
            mu = tuple(float(m) for m in self.mu)
        except (TypeError, ValueError) as exc:
            raise ParameterError(
                f"class mix mu must be a sequence of probabilities, got {self.mu!r}"
            ) from exc
        if not mu:
            raise ParameterError("class mix needs at least one class in mu")
        for m in mu:
            check_probability(m, "mu entry", allow_zero=False)
        total = math.fsum(mu)
        if abs(total - 1.0) > 1e-9:
            raise ParameterError(
                f"class probabilities mu must sum to 1, got {total}"
            )
        object.__setattr__(self, "mu", mu)
        try:
            matrix = tuple(
                tuple(float(a) for a in row) for row in self.channel_probs
            )
        except (TypeError, ValueError) as exc:
            raise ParameterError(
                "channel_probs must be a square matrix of probabilities, "
                f"got {self.channel_probs!r}"
            ) from exc
        size = len(mu)
        if len(matrix) != size or any(len(row) != size for row in matrix):
            raise ParameterError(
                f"channel_probs must be a {size}x{size} matrix (one row per "
                f"class), got shape {[len(r) for r in matrix]}"
            )
        for i in range(size):
            for j in range(size):
                check_probability(
                    matrix[i][j], f"channel_probs[{i}][{j}]", allow_zero=False
                )
                if matrix[i][j] != matrix[j][i]:
                    raise ParameterError(
                        "channel_probs must be symmetric (an undirected "
                        f"channel): [{i}][{j}]={matrix[i][j]} != "
                        f"[{j}][{i}]={matrix[j][i]}"
                    )
        object.__setattr__(self, "channel_probs", matrix)

    @property
    def num_classes(self) -> int:
        return len(self.mu)

    def to_dict(self) -> Dict[str, object]:
        return {
            "mu": list(self.mu),
            "channel_probs": [list(row) for row in self.channel_probs],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ClassMix":
        if not isinstance(data, Mapping):
            raise ParameterError(
                f"classes must be a mapping with 'mu' and 'channel_probs', "
                f"got {data!r}"
            )
        unknown = set(data) - {"mu", "channel_probs"}
        if unknown:
            raise ParameterError(
                f"unknown class-mix fields {sorted(unknown)}; "
                "valid fields: ['channel_probs', 'mu']"
            )
        missing = {"mu", "channel_probs"} - set(data)
        if missing:
            raise ParameterError(
                f"class mix is missing required fields {sorted(missing)}"
            )
        mu = data["mu"]
        probs = data["channel_probs"]
        if not isinstance(mu, Sequence) or isinstance(mu, str):
            raise ParameterError(f"mu must be a list of probabilities, got {mu!r}")
        if not isinstance(probs, Sequence) or isinstance(probs, str):
            raise ParameterError(
                f"channel_probs must be a list of rows, got {probs!r}"
            )
        for row in probs:
            if not isinstance(row, Sequence) or isinstance(row, str):
                raise ParameterError(
                    f"channel_probs rows must be lists of probabilities, got {row!r}"
                )
        return cls(
            mu=tuple(mu),
            channel_probs=tuple(tuple(row) for row in probs),
        )


_SCENARIO_FIELDS = {
    "name",
    "num_nodes",
    "num_nodes_grid",
    "pool_size",
    "ring_sizes",
    "curves",
    "metrics",
    "trials",
    "seed",
    "channel",
    "kind",
    "protocol",
    "protocol_params",
    "kernel_backend",
    "classes",
}


def _is_nested(seq: Sequence) -> bool:
    """Whether *seq*'s first element is itself a sequence (per-size form)."""
    if not seq:
        return False
    head = seq[0]
    return isinstance(head, Sequence) and not isinstance(head, str)


def _deep_listify(value: object) -> object:
    """Tuples (at any depth) → lists, for JSON-normal-form serialization."""
    if isinstance(value, tuple):
        return [_deep_listify(v) for v in value]
    return value


@dataclasses.dataclass(frozen=True)
class Scenario:
    """A frozen, JSON-round-trippable experiment description.

    Attributes
    ----------
    name:
        Identifier used to look the scenario's result up in a
        :class:`~repro.study.result.StudyResult`.
    num_nodes, num_nodes_grid:
        ``n`` of the key-predistribution model.  Exactly one must be
        set for sweep scenarios: a single ``num_nodes`` pins one size;
        ``num_nodes_grid`` declares a whole growth sweep (one size axis
        entry per ``n``, distinct values).
    pool_size:
        ``P`` of the model — one int shared by every size, or (with a
        size grid) one int per size.
    ring_sizes:
        The ``K`` grid (one deployment family per ``K``) — one flat
        list shared by every size, or one equal-length list per size.
    curves:
        ``(q, p)`` post-filters evaluated on every deployment — shared,
        or one equal-length list per size (growth sweeps solve ``p``
        per ``n``).
    metrics:
        Metric set derived per deployment and curve.
    trials, seed:
        Monte Carlo repetitions and the deterministic root seed.
    channel:
        ``"onoff"`` (Bernoulli(p) per candidate edge, nested thinning)
        or ``"disk"`` (torus disk model; ``p`` is the matched marginal
        ``pi * r**2``, thresholds nested in ``r``).
    kind:
        ``"sweep"`` or ``"protocol"``.
    protocol, protocol_params:
        For ``kind="protocol"``: registered protocol name and its
        parameters (see :mod:`repro.study.protocols`).
    kernel_backend:
        Kernel backend name for this scenario's compute kernels
        (:mod:`repro.kernels`; e.g. ``"reference"`` or ``"numba"``), or
        ``None`` for ambient resolution (CLI ``--kernel-backend`` >
        ``REPRO_KERNEL_BACKEND`` env > reference).  Backends are
        decision-identical, so this field never changes results — it is
        still part of the config round-trip so runs record what they
        executed on.  Sweep scenarios only.
    classes:
        Optional :class:`ClassMix` declaring the heterogeneous
        (Eletreby–Yağan) scenario family: per-class probabilities
        ``mu`` and the per-class-pair channel matrix.  With a class
        mix, every ``ring_sizes`` entry becomes a per-class ``[K_1,
        ..., K_C]`` vector (one more nesting level for sized
        scenarios), the channel must be ``"onoff"``, and each curve's
        ``p`` scales the whole matrix.  Capture/attack metrics are not
        supported on the ragged heterogeneous rings.
    """

    name: str
    num_nodes: Optional[int] = None
    pool_size: Union[int, Tuple[int, ...], None] = None
    trials: Optional[int] = None
    num_nodes_grid: Tuple[int, ...] = ()
    ring_sizes: Tuple = ()
    curves: Tuple = ()
    metrics: Tuple[MetricSpec, ...] = ()
    seed: int = 0
    channel: str = "onoff"
    kind: str = "sweep"
    protocol: Optional[str] = None
    protocol_params: Tuple[Tuple[str, object], ...] = ()
    kernel_backend: Optional[str] = None
    classes: Optional[ClassMix] = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ParameterError(f"scenario name must be a non-empty string, got {self.name!r}")
        if self.trials is None:
            raise ParameterError("scenario is missing required field 'trials'")
        object.__setattr__(self, "trials", check_positive_int(self.trials, "trials"))
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ParameterError(f"seed must be an int, got {self.seed!r}")
        if self.seed < 0:
            raise ParameterError(f"seed must be >= 0, got {self.seed}")
        if self.kind not in ("sweep", "protocol"):
            raise ParameterError(
                f"unknown scenario kind {self.kind!r}; use 'sweep' or 'protocol'"
            )
        if self.classes is not None and not isinstance(self.classes, ClassMix):
            if not isinstance(self.classes, Mapping):
                raise ParameterError(
                    f"classes must be a ClassMix or mapping, got {self.classes!r}"
                )
            object.__setattr__(self, "classes", ClassMix.from_dict(self.classes))
        if self.classes is not None and self.kind == "protocol":
            raise ParameterError(
                "heterogeneous classes apply to sweep scenarios; protocol "
                f"scenario {self.name!r} runs its own trial loop"
            )
        if self.kernel_backend is not None:
            if self.kind == "protocol":
                raise ParameterError(
                    "kernel_backend applies to sweep scenarios; protocol "
                    f"scenario {self.name!r} runs its own trial loop"
                )
            from repro.kernels import resolve_backend_name

            try:
                resolve_backend_name(self.kernel_backend)
            except KernelError as exc:
                raise ParameterError(str(exc)) from exc
        self._normalize_sizes()
        if isinstance(self.protocol_params, Mapping):
            object.__setattr__(
                self, "protocol_params", tuple(sorted(self.protocol_params.items()))
            )
        else:
            object.__setattr__(
                self,
                "protocol_params",
                tuple((str(k), v) for k, v in self.protocol_params),
            )
        if self.kind == "protocol":
            self._validate_protocol()
            return
        self._validate_sweep()

    # -- size axis normalization --------------------------------------

    def _normalize_sizes(self) -> None:
        grid = self.num_nodes_grid
        if grid is None:
            grid = ()
        if isinstance(grid, (int, str)) or not isinstance(grid, Sequence):
            raise ParameterError(
                f"num_nodes_grid must be a sequence of ints, got {grid!r}"
            )
        object.__setattr__(
            self,
            "num_nodes_grid",
            tuple(check_positive_int(n, "num_nodes_grid entry") for n in grid),
        )
        if len(set(self.num_nodes_grid)) != len(self.num_nodes_grid):
            raise ParameterError(
                f"num_nodes_grid sizes must be distinct, got {self.num_nodes_grid}"
            )
        if self.sized:
            if self.num_nodes is not None:
                raise ParameterError(
                    "set exactly one of num_nodes / num_nodes_grid "
                    f"(got num_nodes={self.num_nodes} and "
                    f"num_nodes_grid={self.num_nodes_grid})"
                )
        else:
            if self.num_nodes is None:
                raise ParameterError(
                    "scenario needs num_nodes (one size) or num_nodes_grid "
                    "(a growth sweep)"
                )
            object.__setattr__(
                self, "num_nodes", check_positive_int(self.num_nodes, "num_nodes")
            )
        # pool_size: one int shared by every size, or one per size.
        pool = self.pool_size
        if pool is None:
            raise ParameterError("scenario is missing required field 'pool_size'")
        if isinstance(pool, Sequence) and not isinstance(pool, str):
            if not self.sized:
                raise ParameterError(
                    "per-size pool_size lists require num_nodes_grid; "
                    f"got pool_size={list(pool)!r} without a size grid"
                )
            if len(pool) != self.num_sizes:
                raise ParameterError(
                    f"pool_size has {len(pool)} entries but num_nodes_grid "
                    f"has {self.num_sizes} sizes"
                )
            object.__setattr__(
                self,
                "pool_size",
                tuple(check_positive_int(p, "pool_size entry") for p in pool),
            )
        else:
            object.__setattr__(
                self, "pool_size", check_positive_int(pool, "pool_size")
            )

    # -- size accessors ------------------------------------------------

    @property
    def sized(self) -> bool:
        """Whether this scenario declares a size grid over ``n``."""
        return bool(self.num_nodes_grid)

    @property
    def sizes(self) -> Tuple[int, ...]:
        """The node-count axis (length 1 for plain scenarios)."""
        return self.num_nodes_grid if self.sized else (self.num_nodes,)

    @property
    def num_sizes(self) -> int:
        return len(self.sizes)

    def num_nodes_at(self, size_index: int) -> int:
        return self.sizes[size_index]

    def pool_size_at(self, size_index: int) -> int:
        if isinstance(self.pool_size, tuple):
            return self.pool_size[size_index]
        return self.pool_size

    def _rings_per_size(self) -> bool:
        """Whether ``ring_sizes`` is declared per size.

        With a class mix the innermost level is always the per-class
        ``[K_1, ..., K_C]`` vector, so the per-size form carries one
        extra nesting level (depth 3 instead of 2).
        """
        if self.classes is not None:
            return (
                _is_nested(self.ring_sizes)
                and bool(self.ring_sizes[0])
                and _is_nested(self.ring_sizes[0])
            )
        return _is_nested(self.ring_sizes)

    def ring_sizes_at(self, size_index: int) -> Tuple:
        """The ``K`` grid of one size (per-size or shared declaration).

        Entries are ints, or per-class int tuples when ``classes`` is
        declared.
        """
        if self._rings_per_size():
            return self.ring_sizes[size_index]
        return self.ring_sizes

    def curves_at(self, size_index: int) -> Tuple[Curve, ...]:
        """The ``(q, p)`` curves of one size."""
        if self.curves and _is_nested(self.curves[0]):
            return self.curves[size_index]
        return self.curves

    @property
    def num_rings(self) -> int:
        """Ring-axis length (uniform across sizes by validation)."""
        return len(self.ring_sizes_at(0)) if self.ring_sizes else 0

    @property
    def num_curves(self) -> int:
        """Curve-axis length (uniform across sizes by validation)."""
        return len(self.curves_at(0)) if self.curves else 0

    # -- validation ----------------------------------------------------

    def _validate_protocol(self) -> None:
        if self.sized:
            raise ParameterError(
                "protocol scenarios run one bespoke trial loop per size; "
                "num_nodes_grid is only supported for sweep scenarios"
            )
        if not self.protocol:
            raise ParameterError(
                "protocol scenarios need a 'protocol' name "
                "(see repro.study.protocols.list_protocols())"
            )
        if self.ring_sizes or self.curves or self.metrics:
            raise ParameterError(
                "protocol scenarios take parameters via 'protocol_params'; "
                "ring_sizes/curves/metrics must be empty"
            )
        from repro.study.protocols import get_protocol

        get_protocol(self.protocol)  # raises ExperimentError if unknown

    def _normalize_class_rings(self) -> None:
        """Normalize ring entries to per-class int vectors (class mix)."""
        assert self.classes is not None
        num_classes = self.classes.num_classes
        rings = self.ring_sizes

        def as_entry(entry) -> Tuple[int, ...]:
            if not isinstance(entry, Sequence) or isinstance(entry, str):
                raise ParameterError(
                    "with classes, every ring_sizes entry is a per-class "
                    f"[K_1, ..., K_{num_classes}] vector, got {entry!r}"
                )
            out = tuple(check_positive_int(k, "ring_sizes entry") for k in entry)
            if len(out) != num_classes:
                raise ParameterError(
                    f"per-class ring vector {list(entry)!r} has {len(out)} "
                    f"entries but the class mix declares {num_classes} classes"
                )
            return out

        if self._rings_per_size():
            if not self.sized:
                raise ParameterError(
                    "per-size ring_sizes lists require num_nodes_grid; "
                    f"got nested ring_sizes {rings!r} without a size grid"
                )
            if len(rings) != self.num_sizes:
                raise ParameterError(
                    f"ring_sizes has {len(rings)} per-size entries but "
                    f"num_nodes_grid has {self.num_sizes} sizes"
                )
            nested = tuple(
                tuple(as_entry(entry) for entry in per_size) for per_size in rings
            )
            lengths = {len(per_size) for per_size in nested}
            if len(lengths) != 1 or 0 in lengths:
                raise ParameterError(
                    "per-size ring_sizes entries must be non-empty and all "
                    f"the same length (rectangular K axis), got lengths "
                    f"{[len(p) for p in nested]}"
                )
            object.__setattr__(self, "ring_sizes", nested)
        else:
            object.__setattr__(
                self, "ring_sizes", tuple(as_entry(entry) for entry in rings)
            )

    def _normalize_ring_sizes(self) -> None:
        rings = self.ring_sizes
        if self.classes is not None:
            self._normalize_class_rings()
            return
        if _is_nested(rings):
            if not self.sized:
                raise ParameterError(
                    "per-size ring_sizes lists require num_nodes_grid; "
                    f"got nested ring_sizes {rings!r} without a size grid"
                )
            if len(rings) != self.num_sizes:
                raise ParameterError(
                    f"ring_sizes has {len(rings)} per-size entries but "
                    f"num_nodes_grid has {self.num_sizes} sizes"
                )
            nested = tuple(tuple(int(r) for r in per_size) for per_size in rings)
            lengths = {len(per_size) for per_size in nested}
            if len(lengths) != 1 or 0 in lengths:
                raise ParameterError(
                    "per-size ring_sizes entries must be non-empty and all "
                    f"the same length (rectangular K axis), got lengths "
                    f"{[len(p) for p in nested]}"
                )
            object.__setattr__(self, "ring_sizes", nested)
        else:
            object.__setattr__(
                self, "ring_sizes", tuple(int(r) for r in rings)
            )

    def _normalize_curves(self) -> None:
        curves = self.curves

        def as_curves(seq, where: str) -> Tuple[Curve, ...]:
            try:
                return tuple((int(q), float(p)) for q, p in seq)
            except (TypeError, ValueError) as exc:
                raise ParameterError(
                    f"curves must be (q, p) pairs, got {where!r}"
                ) from exc

        if curves and _is_nested(curves[0]):
            if not self.sized:
                raise ParameterError(
                    "per-size curves lists require num_nodes_grid; "
                    f"got nested curves {curves!r} without a size grid"
                )
            if len(curves) != self.num_sizes:
                raise ParameterError(
                    f"curves has {len(curves)} per-size entries but "
                    f"num_nodes_grid has {self.num_sizes} sizes"
                )
            nested = tuple(as_curves(per_size, per_size) for per_size in curves)
            lengths = {len(per_size) for per_size in nested}
            if len(lengths) != 1 or 0 in lengths:
                raise ParameterError(
                    "per-size curves entries must be non-empty and all the "
                    f"same length (rectangular curve axis), got lengths "
                    f"{[len(p) for p in nested]}"
                )
            object.__setattr__(self, "curves", nested)
        else:
            object.__setattr__(self, "curves", as_curves(curves, curves))

    def _validate_sweep(self) -> None:
        if self.protocol is not None or self.protocol_params:
            raise ParameterError(
                "sweep scenarios must not set 'protocol'/'protocol_params'"
            )
        if self.channel not in CHANNEL_KINDS:
            known = ", ".join(CHANNEL_KINDS)
            raise ParameterError(
                f"unknown channel {self.channel!r}; known channels: {known}"
            )
        if self.classes is not None and self.channel != "onoff":
            raise ParameterError(
                "heterogeneous classes model per-class-pair on/off "
                f"probabilities; channel must be 'onoff', got {self.channel!r}"
            )
        if not self.ring_sizes:
            raise ParameterError("ring_sizes must be non-empty")
        if not self.curves:
            raise ParameterError("curves must be non-empty")
        if not self.metrics:
            raise ParameterError("metrics must be non-empty")
        self._normalize_ring_sizes()
        self._normalize_curves()
        object.__setattr__(
            self,
            "metrics",
            tuple(
                m if isinstance(m, MetricSpec) else MetricSpec.from_dict(m)
                for m in self.metrics
            ),
        )
        labels = [m.label for m in self.metrics]
        if len(set(labels)) != len(labels):
            raise ParameterError(f"duplicate metrics in scenario: {labels}")
        if self.classes is not None:
            for metric in self.metrics:
                if metric.needs_capture:
                    raise ParameterError(
                        f"metric {metric.label} requires node capture, which "
                        "is not supported with heterogeneous classes (ragged "
                        "per-class rings)"
                    )
        peak_alpha = (
            max(max(row) for row in self.classes.channel_probs)
            if self.classes is not None
            else None
        )
        for si in range(self.num_sizes):
            pool = self.pool_size_at(si)
            for q, p in self.curves_at(si):
                if peak_alpha is not None:
                    # With classes, a curve's p is a scalar multiplier on
                    # the channel matrix, not a probability itself: only
                    # the effective pair probabilities p * alpha_ij must
                    # stay in (0, 1], so p may exceed 1 when the matrix
                    # peak is below 1.
                    if not (p > 0.0) or p * peak_alpha > 1.0:
                        raise ParameterError(
                            f"channel scale p={p} must be positive and keep "
                            f"every p * channel_probs[i][j] <= 1 (matrix "
                            f"peak {peak_alpha})"
                        )
                else:
                    check_probability(p, "channel_prob", allow_zero=False)
                if self.channel == "disk" and p > _DISK_MAX_PROB:
                    raise ParameterError(
                        f"disk channel marginal p={p} exceeds pi/4 ~ "
                        f"{_DISK_MAX_PROB:.4f} (radius would leave the exact-"
                        "marginal regime r <= 1/2)"
                    )
                for ring in self.ring_sizes_at(si):
                    if self.classes is not None:
                        for per_class in ring:
                            check_key_parameters(per_class, pool, q)
                    else:
                        check_key_parameters(ring, pool, q)
        smallest = min(self.sizes)
        for metric in self.metrics:
            if metric.needs_capture and metric.captured > smallest - 2:
                raise ParameterError(
                    f"metric {metric.label} captures {metric.captured} of "
                    f"{smallest} nodes; at least two must survive"
                )
            if metric.kind == "k_connectivity" and metric.k > 1 and smallest < metric.k + 1:
                raise ParameterError(
                    f"k-connectivity with k={metric.k} needs num_nodes > k"
                )

    # -- deployment grouping ------------------------------------------

    def deployment_key(self) -> Tuple:
        """Scenarios with equal keys share sampled deployments.

        Sized scenarios key on the canonical per-size expansion (so a
        flat shared ``ring_sizes`` groups with the equivalent nested
        declaration) and carry a marker distinguishing them from plain
        scenarios: the two use different seed addressing, so a one-size
        grid never silently shares deployments with a plain scenario.
        """
        if self.sized:
            key: Tuple = (
                "sized",
                self.sizes,
                tuple(self.pool_size_at(s) for s in range(self.num_sizes)),
                tuple(self.ring_sizes_at(s) for s in range(self.num_sizes)),
                self.trials,
                self.seed,
            )
        else:
            key = (
                self.num_nodes,
                self.pool_size,
                self.ring_sizes,
                self.trials,
                self.seed,
            )
        if self.classes is not None:
            # The class mix changes both the sampled world (labels,
            # per-class rings) and the channel thinning, so scenarios
            # only share deployments when mu AND the matrix agree;
            # homogeneous keys stay byte-identical to the historical
            # form.
            key = key + (("classes", self.classes.mu, self.classes.channel_probs),)
        return key

    def with_trials(self, trials: int) -> "Scenario":
        """This scenario with a different trial count, all else equal.

        The trial axis is the one axis results may legally differ on
        while still describing "the same experiment": extension shards
        cover a window of it, and merged results cover the union.
        Every other field participates in
        :meth:`~repro.study.result.ScenarioResult.merge` compatibility
        checking.  Revalidates on construction like any scenario.
        """
        return dataclasses.replace(self, trials=trials)

    def canonical_json(self, *, include_trials: bool = True) -> str:
        """Stable JSON normal form of this scenario.

        Sorted keys, compact separators, no whitespace variance — two
        scenarios serialize identically iff their :meth:`to_dict` forms
        are equal.  With ``include_trials=False`` the ``trials`` field is
        dropped, yielding the *family* form shared by every trial-window
        shard and extension of the same experiment (see
        :meth:`with_trials` for why trials is the one excluded axis).
        """
        data = self.to_dict()
        if not include_trials:
            data.pop("trials", None)
        return json.dumps(data, sort_keys=True, separators=(",", ":"))

    def content_hash(self) -> str:
        """sha256 hex digest of the trials-excluded canonical JSON form.

        This is the content address used by the result cache and shard
        transport: every shard, extension, and merged union of the same
        experiment shares one hash, while any other field difference
        (seed, curves, metrics, grid, ...) produces a different one.
        """
        payload = self.canonical_json(include_trials=False)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @property
    def needs_capture(self) -> bool:
        return any(m.needs_capture for m in self.metrics)

    def metric_labels(self) -> Tuple[str, ...]:
        return tuple(m.label for m in self.metrics)

    def metric_by_label(self, label: str) -> Optional[MetricSpec]:
        """The :class:`MetricSpec` carrying *label*, or ``None``."""
        for metric in self.metrics:
            if metric.label == label:
                return metric
        return None

    # -- JSON round-trip ----------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "kind": self.kind,
            "trials": self.trials,
            "seed": self.seed,
        }
        if self.sized:
            out["num_nodes_grid"] = list(self.num_nodes_grid)
        else:
            out["num_nodes"] = self.num_nodes
        if isinstance(self.pool_size, tuple):
            out["pool_size"] = list(self.pool_size)
        else:
            out["pool_size"] = self.pool_size
        if self.kernel_backend is not None:
            out["kernel_backend"] = self.kernel_backend
        if self.classes is not None:
            out["classes"] = self.classes.to_dict()
        if self.kind == "protocol":
            out["protocol"] = self.protocol
            out["protocol_params"] = dict(self.protocol_params)
            return out
        rings = _deep_listify(self.ring_sizes)
        if self.curves and _is_nested(self.curves[0]):
            curves: object = [
                [[q, p] for q, p in per_size] for per_size in self.curves
            ]
        else:
            curves = [[q, p] for q, p in self.curves]
        out.update(
            {
                "channel": self.channel,
                "ring_sizes": rings,
                "curves": curves,
                "metrics": [m.to_dict() for m in self.metrics],
            }
        )
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Scenario":
        if not isinstance(data, Mapping):
            raise ParameterError(
                f"scenario must be a mapping, got {type(data).__name__}"
            )
        unknown = set(data) - _SCENARIO_FIELDS
        if unknown:
            raise ParameterError(
                f"unknown scenario fields {sorted(unknown)}; "
                f"valid fields: {sorted(_SCENARIO_FIELDS)}"
            )
        missing = {"name", "pool_size", "trials"} - set(data)
        if not ({"num_nodes", "num_nodes_grid"} & set(data)):
            missing.add("num_nodes")
        if missing:
            raise ParameterError(
                f"scenario is missing required fields {sorted(missing)}"
            )
        curves = data.get("curves", ())
        if not isinstance(curves, Sequence) or isinstance(curves, str):
            raise ParameterError(f"curves must be a list of [q, p] pairs, got {curves!r}")
        metrics_raw = data.get("metrics", ())
        if not isinstance(metrics_raw, Sequence) or isinstance(metrics_raw, str):
            raise ParameterError(f"metrics must be a list of mappings, got {metrics_raw!r}")
        metrics = tuple(
            m if isinstance(m, MetricSpec) else MetricSpec.from_dict(m)
            for m in metrics_raw
        )
        protocol_params = data.get("protocol_params", {})
        if not isinstance(protocol_params, Mapping):
            raise ParameterError(
                f"protocol_params must be a mapping, got {protocol_params!r}"
            )
        classes_raw = data.get("classes")
        classes = None if classes_raw is None else ClassMix.from_dict(classes_raw)  # type: ignore[arg-type]
        num_nodes = data.get("num_nodes")
        try:
            return cls(
                name=str(data["name"]),
                num_nodes=None if num_nodes is None else int(num_nodes),  # type: ignore[arg-type]
                pool_size=data["pool_size"],  # type: ignore[arg-type]
                trials=int(data["trials"]),  # type: ignore[arg-type]
                num_nodes_grid=data.get("num_nodes_grid", ()),  # type: ignore[arg-type]
                ring_sizes=tuple(data.get("ring_sizes", ())),  # type: ignore[arg-type]
                curves=tuple(curves),
                metrics=metrics,
                seed=int(data.get("seed", 0)),  # type: ignore[arg-type]
                channel=str(data.get("channel", "onoff")),
                kind=str(data.get("kind", "sweep")),
                protocol=data.get("protocol"),  # type: ignore[arg-type]
                protocol_params=protocol_params,  # type: ignore[arg-type]
                kernel_backend=(
                    None
                    if data.get("kernel_backend") is None
                    else str(data["kernel_backend"])
                ),
                classes=classes,
            )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, ParameterError):
                raise
            raise ParameterError(f"malformed scenario config: {exc}") from exc

    def to_json(self, **dumps_kwargs: object) -> str:
        dumps_kwargs.setdefault("indent", 2)
        dumps_kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **dumps_kwargs)  # type: ignore[arg-type]

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ParameterError(f"scenario JSON does not parse: {exc}") from exc
        return cls.from_dict(data)
