"""Model parameter containers.

The paper's model is parameterized by the tuple ``(n, K_n, P_n, q, p_n)``:
number of sensors, key ring size, key pool size, required key overlap,
and channel-on probability.  :class:`QCompositeParams` bundles the tuple,
validates it once at construction, and exposes the derived edge
probabilities ``s_{n,q}`` (key graph) and ``t_{n,q}`` (intersection
graph) so experiment code never recomputes them inconsistently.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict

from repro.exceptions import ParameterError
from repro.utils.validation import (
    check_key_parameters,
    check_positive_int,
    check_probability,
)

__all__ = ["QCompositeParams"]


@dataclasses.dataclass(frozen=True)
class QCompositeParams:
    """Parameters of the WSN model ``G_{n,q}(n, K, P, p)``.

    Attributes
    ----------
    num_nodes:
        ``n`` — number of sensors.
    key_ring_size:
        ``K_n`` — number of distinct keys preloaded in each sensor.
    pool_size:
        ``P_n`` — size of the key pool.
    overlap:
        ``q`` — minimum number of shared keys required for a secure link.
    channel_prob:
        ``p_n`` — probability that a node-to-node channel is *on*
        (``0 < p <= 1``).
    """

    num_nodes: int
    key_ring_size: int
    pool_size: int
    overlap: int = 1
    channel_prob: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "num_nodes", check_positive_int(self.num_nodes, "num_nodes")
        )
        check_key_parameters(self.key_ring_size, self.pool_size, self.overlap)
        object.__setattr__(
            self,
            "channel_prob",
            check_probability(self.channel_prob, "channel_prob", allow_zero=False),
        )
        if self.num_nodes < 2:
            raise ParameterError(
                f"num_nodes must be >= 2 for a meaningful network, got {self.num_nodes}"
            )

    # -- derived edge probabilities ------------------------------------

    def key_edge_probability(self) -> float:
        """``s_{n,q}``: probability two nodes share at least ``q`` keys (Eq. 3)."""
        from repro.probability.hypergeometric import overlap_survival

        return overlap_survival(self.key_ring_size, self.pool_size, self.overlap)

    def edge_probability(self) -> float:
        """``t_{n,q} = p * s_{n,q}``: edge probability of ``G_{n,q}`` (Eq. 5)."""
        return self.channel_prob * self.key_edge_probability()

    def alpha(self, k: int = 1) -> float:
        """Deviation ``α_n`` from the k-connectivity critical scaling (Eq. 6).

        Solves ``t_{n,q} = (ln n + (k-1) ln ln n + α_n) / n`` for ``α_n``.
        """
        k = check_positive_int(k, "k")
        n = self.num_nodes
        if n <= 2 and k > 1:
            raise ParameterError("alpha with k > 1 requires num_nodes > 2 (ln ln n)")
        return n * self.edge_probability() - math.log(n) - (k - 1) * math.log(
            math.log(n)
        )

    def mean_degree(self) -> float:
        """Expected degree ``(n - 1) * t_{n,q}`` of a node in ``G_{n,q}``."""
        return (self.num_nodes - 1) * self.edge_probability()

    # -- convenience ----------------------------------------------------

    def with_updates(self, **changes: object) -> "QCompositeParams":
        """Return a copy with the given fields replaced (validated anew)."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON serialization of experiment results."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "QCompositeParams":
        """Inverse of :meth:`to_dict`, with full validation.

        Used by JSON-driven workflows (scenario files, saved results)
        so a parameter tuple round-trips byte-for-byte; unknown keys
        raise :class:`~repro.exceptions.ParameterError` rather than
        being silently dropped.
        """
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ParameterError(
                f"unknown parameter fields {sorted(unknown)}; "
                f"valid fields: {sorted(fields)}"
            )
        return cls(**data)  # type: ignore[arg-type]

    def describe(self) -> str:
        """One-line human-readable summary used in harness headers."""
        return (
            f"n={self.num_nodes}, K={self.key_ring_size}, P={self.pool_size}, "
            f"q={self.overlap}, p={self.channel_prob}"
        )
