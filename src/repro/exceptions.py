"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch one base class at an API
boundary.  Standard Python exceptions (``TypeError`` for wrong argument
types, ``ValueError`` raised by numpy, ...) may still propagate from
misuse that the library does not guard explicitly.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ParameterError(ReproError, ValueError):
    """A model or experiment parameter is outside its valid domain.

    Raised, for example, when a key ring size exceeds the key pool size,
    when a probability lies outside ``[0, 1]``, or when the required key
    overlap ``q`` is not a positive integer.  Inherits from ``ValueError``
    so generic callers that catch ``ValueError`` keep working.
    """


class GraphError(ReproError):
    """An operation on a graph received an invalid graph or node."""


class SimulationError(ReproError):
    """A Monte Carlo simulation could not be carried out as requested."""


class DesignError(ReproError):
    """A network-design query has no feasible solution.

    Raised by the dimensioning solvers in :mod:`repro.core.design` when no
    parameter value in the allowed range achieves the requested target
    (e.g. no key ring size ``K <= P/2`` reaches the connectivity
    threshold).
    """


class ExperimentError(ReproError):
    """An experiment was configured or invoked incorrectly."""


class KernelError(ReproError):
    """A kernel backend is unknown, unavailable, or failed its probe.

    Raised by :mod:`repro.kernels` when a requested backend name is not
    registered or when an optional-dependency backend (e.g. numba) is
    selected but its dependency is not importable.
    """


class SchedulerError(ReproError):
    """Fault-tolerant work-unit scheduling was misconfigured or failed.

    Base class for the typed per-unit failures below; callers of
    :func:`repro.simulation.scheduler.run_units` can catch this one
    class at the boundary.
    """


class WorkUnitError(SchedulerError):
    """One work unit's attempt failed; carries unit index and attempt.

    Instances cross process boundaries (a worker raises, the supervisor
    observes), so ``__reduce__`` keeps the identifying fields through
    pickling.
    """

    def __init__(self, message: str, unit_index=None, attempt=None) -> None:
        super().__init__(message)
        self.unit_index = unit_index
        self.attempt = attempt

    def __reduce__(self):
        return (self.__class__, (self.args[0], self.unit_index, self.attempt))


class UnitTimeoutError(WorkUnitError):
    """A work unit exceeded the scheduler's per-unit timeout.

    The attempt is declared lost and retried; the original execution may
    still complete later, in which case its (bit-identical) result is
    deduplicated, never double-counted.
    """


class CorruptResultError(WorkUnitError):
    """A work unit's result failed integrity validation.

    Raised supervisor-side when a returned payload does not match the
    checksum computed at the worker before the result was shipped —
    a dropped or corrupted (e.g. chaos ``partial``-strategy) result.
    """


class InjectedFailure(WorkUnitError):
    """A failure deliberately raised by the chaos-injection harness.

    The ``crash`` strategy of :class:`repro.simulation.faults.ChaosSpec`
    raises this inside the worker; seeing it escape a run means the
    scheduler's retry budget was exhausted (or no supervisor was active).
    """


class ShardMismatchError(ExperimentError):
    """Two result shards do not describe the same Scenario.

    Raised by :meth:`repro.study.result.ScenarioResult.merge` when the
    content hashes of the two scenarios differ, and by
    :meth:`ScenarioResult.from_dict` when a serialized shard's embedded
    ``scenario_hash`` does not match the scenario it carries.  Inherits
    from :class:`ExperimentError` so existing merge-boundary handlers
    keep working.
    """


class TransportError(ReproError):
    """A shard transport failed to execute or round-trip a shard.

    Raised by :mod:`repro.service.shards` when a worker invocation fails
    (non-zero exit, unreadable result payload), when a shard result's
    payload checksum does not match, or when folded shards do not cover
    the requested trial window.
    """


class AnalysisError(ReproError):
    """The static-analysis linter was misconfigured or could not run.

    Raised by :mod:`repro.analysis` for unknown rule ids, malformed
    baseline files, and invalid rule registrations — never for findings
    in analyzed code, which are reported, not raised.
    """


class DeadUnitError(SchedulerError):
    """Work units exhausted their retry budget and were quarantined.

    Raised only when a caller demands complete results
    (``allow_partial=False``); the default scheduling path degrades to a
    partial result plus a structured fault report instead.
    """
