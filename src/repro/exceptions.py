"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch one base class at an API
boundary.  Standard Python exceptions (``TypeError`` for wrong argument
types, ``ValueError`` raised by numpy, ...) may still propagate from
misuse that the library does not guard explicitly.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ParameterError(ReproError, ValueError):
    """A model or experiment parameter is outside its valid domain.

    Raised, for example, when a key ring size exceeds the key pool size,
    when a probability lies outside ``[0, 1]``, or when the required key
    overlap ``q`` is not a positive integer.  Inherits from ``ValueError``
    so generic callers that catch ``ValueError`` keep working.
    """


class GraphError(ReproError):
    """An operation on a graph received an invalid graph or node."""


class SimulationError(ReproError):
    """A Monte Carlo simulation could not be carried out as requested."""


class DesignError(ReproError):
    """A network-design query has no feasible solution.

    Raised by the dimensioning solvers in :mod:`repro.core.design` when no
    parameter value in the allowed range achieves the requested target
    (e.g. no key ring size ``K <= P/2`` reaches the connectivity
    threshold).
    """


class ExperimentError(ReproError):
    """An experiment was configured or invoked incorrectly."""


class KernelError(ReproError):
    """A kernel backend is unknown, unavailable, or failed its probe.

    Raised by :mod:`repro.kernels` when a requested backend name is not
    registered or when an optional-dependency backend (e.g. numba) is
    selected but its dependency is not importable.
    """
