"""Coupling parameter maps from the proof chain (Lemmas 3–6).

The lower bound of Theorem 1 is proved by sandwiching the WSN graph::

    G_q(n, K, P)  ⊒  H_q(n, x, P)  ⊒  G(n, y)        (Lemmas 5, 6)
    G_{n,q} = G_q ∩ G(n, p)  ⊒  G(n, z),  z = y p    (Lemma 3)

with the explicit parameter choices

    x_n = (K_n / P_n) (1 - sqrt(3 ln n / K_n))        (Eq. 66)
    y_n = ((P_n x_n²)^q / q!) (1 - o(1/ln n))         (Eq. 72)

This module computes those parameters and the finite-``n`` probability
that the *ring-size coupling* underlying Lemma 5 succeeds: a binomial
graph ``H_q(n, x, P)`` can be embedded inside ``G_q(n, K, P)`` whenever
every node's binomial key count ``Bin(P, x)`` is at most ``K`` — the
event whose probability must tend to 1 for the coupling to hold.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.exceptions import ParameterError
from repro.utils.logmath import log_binomial, logsumexp
from repro.utils.validation import (
    check_key_parameters,
    check_positive_int,
    check_probability,
)

__all__ = [
    "binomial_key_probability",
    "coupled_er_probability",
    "coupled_er_probability_full",
    "binomial_ring_tail_probability",
    "coupling_success_probability",
    "coupling_report",
]


def binomial_key_probability(num_nodes: int, key_ring_size: int, pool_size: int) -> float:
    """Return ``x_n`` of Eq. (66): the per-key inclusion probability.

    Requires ``K > 3 ln n`` so the square root is real and ``x_n > 0``;
    otherwise the coupling construction is undefined at this ``n`` and a
    :class:`ParameterError` is raised.
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    check_key_parameters(key_ring_size, pool_size, 1)
    if num_nodes < 2:
        raise ParameterError("num_nodes must be >= 2")
    threshold = 3.0 * math.log(num_nodes)
    if key_ring_size <= threshold:
        raise ParameterError(
            f"Eq. (66) requires K > 3 ln n = {threshold:.3f}, got K={key_ring_size}"
        )
    return (key_ring_size / pool_size) * (
        1.0 - math.sqrt(threshold / key_ring_size)
    )


def coupled_er_probability(x: float, pool_size: int, q: int) -> float:
    """Return the leading term of ``y_n`` in Eq. (72): ``(P x²)^q / q!``.

    The paper's ``y_n`` carries a ``1 - o(1/ln n)`` correction; the
    leading term is the quantity the experiments compare against.
    """
    x = check_probability(x, "x")
    pool_size = check_positive_int(pool_size, "pool_size")
    q = check_positive_int(q, "q")
    base = pool_size * x * x
    return base**q / math.factorial(q)


def coupled_er_probability_full(
    num_nodes: int, key_ring_size: int, pool_size: int, q: int, channel_prob: float
) -> float:
    """Return ``z_n = y_n p_n`` — the ER edge probability of Lemma 3 (Eq. 58).

    Composes Eqs. (66) and (72) with the on/off channel probability.
    """
    channel_prob = check_probability(channel_prob, "channel_prob", allow_zero=False)
    x = binomial_key_probability(num_nodes, key_ring_size, pool_size)
    return coupled_er_probability(x, pool_size, q) * channel_prob


def binomial_ring_tail_probability(pool_size: int, x: float, key_ring_size: int) -> float:
    """Return ``P[Bin(P, x) > K]`` — one node's coupling-failure probability.

    Computed as the complement of the binomial CDF in log space.  For the
    coupling of Lemma 5 to succeed for a whole graph, *no* node may draw
    more than ``K`` keys.
    """
    pool_size = check_positive_int(pool_size, "pool_size")
    x = check_probability(x, "x")
    key_ring_size = check_positive_int(key_ring_size, "key_ring_size")
    if key_ring_size >= pool_size:
        return 0.0
    if x == 0.0:
        return 0.0
    if x == 1.0:
        return 1.0 if key_ring_size < pool_size else 0.0
    log_x = math.log(x)
    log_1mx = math.log1p(-x)
    # Tail sum over j = K+1 .. P is potentially long; sum the shorter side.
    if key_ring_size + 1 > pool_size // 2:
        terms = [
            log_binomial(pool_size, j) + j * log_x + (pool_size - j) * log_1mx
            for j in range(key_ring_size + 1, pool_size + 1)
        ]
        return math.exp(logsumexp(terms)) if terms else 0.0
    head = [
        log_binomial(pool_size, j) + j * log_x + (pool_size - j) * log_1mx
        for j in range(0, key_ring_size + 1)
    ]
    cdf = math.exp(logsumexp(head))
    return max(0.0, 1.0 - cdf)


def coupling_success_probability(
    num_nodes: int, key_ring_size: int, pool_size: int
) -> float:
    """Return ``P[all n binomial ring sizes <= K]`` under Eq. (66)'s ``x_n``.

    This is the probability that the natural monotone coupling between
    ``H_q(n, x_n, P)`` and ``G_q(n, K, P)`` succeeds; Lemma 5 asserts it
    is ``1 - o(1)``.  The experiment harness plots it against ``n``.
    """
    x = binomial_key_probability(num_nodes, key_ring_size, pool_size)
    single_fail = binomial_ring_tail_probability(pool_size, x, key_ring_size)
    if single_fail >= 1.0:
        return 0.0
    return math.exp(num_nodes * math.log1p(-single_fail))


def coupling_report(
    num_nodes: int, key_ring_size: int, pool_size: int, q: int, channel_prob: float
) -> Dict[str, float]:
    """Bundle of all coupling quantities for one parameter point."""
    x = binomial_key_probability(num_nodes, key_ring_size, pool_size)
    y = coupled_er_probability(x, pool_size, q)
    return {
        "x": x,
        "y": y,
        "z": y * channel_prob,
        "single_node_failure": binomial_ring_tail_probability(
            pool_size, x, key_ring_size
        ),
        "coupling_success": coupling_success_probability(
            num_nodes, key_ring_size, pool_size
        ),
    }
