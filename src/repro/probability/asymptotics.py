"""Asymptotic approximations of the edge probabilities (Lemma 2).

Lemma 2 of the paper states that when ``K_n = ω(1)`` and
``K_n²/P_n = o(1)``,

    s_{n,q}  ~  (1/q!) (K_n² / P_n)^q

and, under the stronger conditions ``K_n = ω(ln n)`` and
``K_n²/P_n = o(1/ln n)``, the relative error is ``o(1/ln n)``.

This module provides the approximation itself, its inverse (solve for
``K`` given a target ``s``), and a finite-``n`` diagnostic that reports
the exact relative error so users can see how fast the asymptotics kick
in — the quantity that justifies using the asymptotic form inside the
design guidelines of :mod:`repro.core.design`.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.exceptions import ParameterError
from repro.probability.hypergeometric import overlap_survival
from repro.utils.logmath import log_factorial
from repro.utils.validation import (
    check_key_parameters,
    check_positive_float,
    check_positive_int,
)

__all__ = [
    "edge_probability_asymptotic",
    "log_edge_probability_asymptotic",
    "key_ring_size_for_edge_probability",
    "asymptotic_relative_error",
    "asymptotics_report",
]


def log_edge_probability_asymptotic(
    key_ring_size: float, pool_size: float, q: int
) -> float:
    """Return ``ln[(1/q!) (K²/P)^q]`` for possibly non-integer ``K``.

    Accepting real ``K`` matters: the design solvers invert this formula
    continuously before rounding to an integer ring size.
    """
    key_ring_size = check_positive_float(key_ring_size, "key_ring_size")
    pool_size = check_positive_float(pool_size, "pool_size")
    q = check_positive_int(q, "q")
    ratio = key_ring_size * key_ring_size / pool_size
    return q * math.log(ratio) - log_factorial(q)


def edge_probability_asymptotic(
    key_ring_size: float, pool_size: float, q: int
) -> float:
    """Return the Lemma-2 approximation ``(1/q!) (K²/P)^q`` of ``s_{n,q}``."""
    return math.exp(
        log_edge_probability_asymptotic(key_ring_size, pool_size, q)
    )


def key_ring_size_for_edge_probability(
    target: float, pool_size: float, q: int
) -> float:
    """Invert Lemma 2: the real ``K`` with ``(1/q!)(K²/P)^q = target``.

    Returns the continuous solution ``K = sqrt(P (q! target)^{1/q})``;
    callers round up to an integer ring size.  Raises
    :class:`ParameterError` when *target* is not in ``(0, 1)``.
    """
    target = check_positive_float(target, "target")
    if target >= 1.0:
        raise ParameterError(f"target edge probability must be < 1, got {target}")
    pool_size = check_positive_float(pool_size, "pool_size")
    q = check_positive_int(q, "q")
    ratio = (math.exp(log_factorial(q)) * target) ** (1.0 / q)
    return math.sqrt(pool_size * ratio)


def asymptotic_relative_error(key_ring_size: int, pool_size: int, q: int) -> float:
    """Return ``approx/exact - 1`` — the signed relative error of Lemma 2.

    Positive values mean the asymptotic form overestimates ``s_{n,q}``.
    """
    check_key_parameters(key_ring_size, pool_size, q)
    exact = overlap_survival(key_ring_size, pool_size, q)
    if exact == 0.0:
        raise ParameterError(
            "exact edge probability underflows to 0; relative error undefined"
        )
    approx = edge_probability_asymptotic(key_ring_size, pool_size, q)
    return approx / exact - 1.0


def asymptotics_report(key_ring_size: int, pool_size: int, q: int) -> Dict[str, float]:
    """Return exact vs asymptotic ``s_{n,q}`` and their relative error.

    Convenience bundle used by the EXPERIMENTS harness and examples.
    """
    exact = overlap_survival(key_ring_size, pool_size, q)
    approx = edge_probability_asymptotic(key_ring_size, pool_size, q)
    return {
        "exact": exact,
        "asymptotic": approx,
        "relative_error": (approx / exact - 1.0) if exact > 0 else float("inf"),
        "ratio_K2_over_P": key_ring_size * key_ring_size / pool_size,
    }
