"""Poisson distribution helpers for the degree-distribution law (Lemma 9).

Lemma 9 states that the number of nodes of fixed degree ``h`` in
``G_{n,q}`` is asymptotically Poisson with mean
``λ_{n,h} = n (h!)^{-1} (n t)^{h} e^{-n t}``.  The experiment harness
compares empirical counts against this law using the probability mass
function, cumulative distribution, and total-variation distance
implemented here.  Everything is computed in log space for stability at
large means.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.exceptions import ParameterError
from repro.utils.logmath import log_factorial
from repro.utils.validation import check_nonnegative_int

__all__ = [
    "poisson_log_pmf",
    "poisson_pmf",
    "poisson_cdf",
    "poisson_pmf_vector",
    "total_variation_from_counts",
    "poisson_total_variation",
]


def poisson_log_pmf(count: int, mean: float) -> float:
    """Return ``ln P[X = count]`` for ``X ~ Poisson(mean)``.

    ``mean = 0`` is allowed (point mass at 0).
    """
    count = check_nonnegative_int(count, "count")
    if mean < 0 or math.isnan(mean):
        raise ParameterError(f"mean must be >= 0, got {mean}")
    if mean == 0.0:
        return 0.0 if count == 0 else float("-inf")
    return count * math.log(mean) - mean - log_factorial(count)


def poisson_pmf(count: int, mean: float) -> float:
    """Return ``P[X = count]`` for ``X ~ Poisson(mean)``."""
    lp = poisson_log_pmf(count, mean)
    return math.exp(lp) if lp > float("-inf") else 0.0


def poisson_cdf(count: int, mean: float) -> float:
    """Return ``P[X <= count]`` by direct stable summation.

    Adequate for the moderate means (``λ ≲ 50``) that arise in the
    degree-distribution experiments; clamped to ``[0, 1]``.
    """
    count = check_nonnegative_int(count, "count")
    total = 0.0
    for j in range(count + 1):
        total += poisson_pmf(j, mean)
    return min(total, 1.0)


def poisson_pmf_vector(max_count: int, mean: float) -> np.ndarray:
    """Return ``[P[X=0], ..., P[X=max_count]]`` as a numpy vector."""
    max_count = check_nonnegative_int(max_count, "max_count")
    return np.array(
        [poisson_pmf(j, mean) for j in range(max_count + 1)], dtype=np.float64
    )


def total_variation_from_counts(
    observed_counts: Sequence[int], reference_pmf: Sequence[float]
) -> float:
    """Total-variation distance between an empirical and a reference pmf.

    *observed_counts* are raw occurrence counts (histogram); they are
    normalized internally.  *reference_pmf* may cover a shorter support;
    missing reference mass beyond its length is treated as the leftover
    tail mass (so TV is still a valid distance on the common refinement).
    """
    obs = np.asarray(observed_counts, dtype=np.float64)
    if obs.ndim != 1 or obs.size == 0:
        raise ParameterError("observed_counts must be a non-empty 1-D sequence")
    if np.any(obs < 0):
        raise ParameterError("observed_counts must be non-negative")
    total = obs.sum()
    if total == 0:
        raise ParameterError("observed_counts sums to zero")
    emp = obs / total

    ref = np.asarray(reference_pmf, dtype=np.float64)
    if np.any(ref < 0):
        raise ParameterError("reference_pmf must be non-negative")
    size = max(emp.size, ref.size) + 1
    e = np.zeros(size)
    r = np.zeros(size)
    e[: emp.size] = emp
    r[: ref.size] = ref
    # Put residual reference mass (beyond the listed support) in the last bin.
    r[-1] += max(0.0, 1.0 - ref.sum())
    return 0.5 * float(np.abs(e - r).sum())


def poisson_total_variation(
    observed_counts: Sequence[int], mean: float, *, tail_buffer: int = 10
) -> float:
    """TV distance between an empirical histogram and ``Poisson(mean)``.

    The reference support extends *tail_buffer* bins past the observed
    maximum so truncation error is negligible for the experiment sizes
    used here.
    """
    obs = np.asarray(observed_counts, dtype=np.float64)
    support = obs.size + int(tail_buffer)
    ref = poisson_pmf_vector(support, mean)
    return total_variation_from_counts(observed_counts, ref)
