"""Key-overlap distribution: exact hypergeometric mass and tail.

When two sensors independently receive uniformly random ``K``-subsets of
a pool of ``P`` keys, the overlap ``|S_i ∩ S_j|`` follows the
hypergeometric distribution

    P[|S_i ∩ S_j| = u] = C(K, u) C(P - K, K - u) / C(P, K)        (Eq. 4)

and the q-composite edge probability is the upper tail

    s(K, P, q) = P[|S_i ∩ S_j| >= q] = sum_{u >= q} P[overlap = u] (Eq. 3)

All computations run in log space (see :mod:`repro.utils.logmath`) so
they are exact to double precision even for pool sizes in the millions.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.utils.logmath import log1mexp, log_binomial, logsumexp
from repro.utils.validation import check_key_parameters, check_nonnegative_int

__all__ = [
    "log_overlap_pmf",
    "overlap_pmf",
    "overlap_pmf_vector",
    "overlap_survival",
    "log_overlap_survival",
    "overlap_cdf",
    "overlap_mean",
    "no_overlap_probability",
    "cross_overlap_survival",
]


def _check(key_ring_size: int, pool_size: int) -> None:
    check_key_parameters(key_ring_size, pool_size, 1)


def log_overlap_pmf(key_ring_size: int, pool_size: int, u: int) -> float:
    """Return ``ln P[|S_i ∩ S_j| = u]`` (Eq. 4), ``-inf`` if impossible.

    The support is ``max(0, 2K - P) <= u <= K``; values outside map to
    ``-inf``.
    """
    _check(key_ring_size, pool_size)
    u = check_nonnegative_int(u, "u")
    k, p = key_ring_size, pool_size
    num = log_binomial(k, u) + log_binomial(p - k, k - u)
    if num == float("-inf"):
        return float("-inf")
    return num - log_binomial(p, k)


def overlap_pmf(key_ring_size: int, pool_size: int, u: int) -> float:
    """Return ``P[|S_i ∩ S_j| = u]`` exactly (within double precision)."""
    lp = log_overlap_pmf(key_ring_size, pool_size, u)
    return math.exp(lp) if lp > float("-inf") else 0.0


def overlap_pmf_vector(key_ring_size: int, pool_size: int) -> np.ndarray:
    """Return the full pmf vector over ``u = 0 .. K`` as a numpy array.

    The vector sums to 1 up to double-precision rounding; impossible
    overlap values carry exactly 0.
    """
    _check(key_ring_size, pool_size)
    k = key_ring_size
    seq = _pmf_recurrence(k, pool_size)
    if seq is not None:
        return np.array(seq, dtype=np.float64)
    logs = np.array(
        [log_overlap_pmf(k, pool_size, u) for u in range(k + 1)], dtype=np.float64
    )
    out = np.zeros(k + 1, dtype=np.float64)
    finite = logs > float("-inf")
    out[finite] = np.exp(logs[finite])
    return out


def _pmf_recurrence(key_ring_size: int, pool_size: int):
    """Full pmf over ``u = 0..K`` via the stable ratio recurrence.

    ``pmf(u+1)/pmf(u) = (K-u)² / ((u+1)(P-2K+u+1))`` propagates only a
    few ulps of relative error per step — far better conditioned than
    exponentiating lgamma differences of magnitude ~10⁵.  Returns
    ``None`` when the recurrence is unusable (``2K > P``, where the
    support does not start at 0, or when ``pmf(0)`` underflows); callers
    then fall back to the log-space path.
    """
    k, p = key_ring_size, pool_size
    if 2 * k > p:
        return None
    val = 1.0
    for i in range(k):
        val *= (p - k - i) / (p - i)
    if val == 0.0:
        return None  # underflow: log-space fallback handles this regime
    out = [val]
    for u in range(k):
        val = val * (k - u) * (k - u) / ((u + 1) * (p - 2 * k + u + 1))
        out.append(val)
    return out


def log_overlap_survival(key_ring_size: int, pool_size: int, q: int) -> float:
    """Return ``ln s(K, P, q) = ln P[overlap >= q]`` stably.

    Uses the ratio-recurrence pmf with a direct tail sum (relative error
    a few hundred ulps at worst); exotic parameter regimes where the
    recurrence under/overflows fall back to lgamma-based log-space
    summation.
    """
    check_key_parameters(key_ring_size, pool_size, q)
    k = key_ring_size
    if q == 0:
        return 0.0

    seq = _pmf_recurrence(k, pool_size)
    if seq is not None:
        tail = math.fsum(seq[q:])
        if tail > 0.0:
            return math.log(min(tail, 1.0))
        # Tail underflowed in linear space; fall through to log space.

    if q <= k // 2 + 1:
        # log(1 - sum_{u < q} pmf(u))
        lower_terms = [
            log_overlap_pmf(k, pool_size, u) for u in range(0, q)
        ]
        log_lower = logsumexp(lower_terms)
        if log_lower >= 0.0:
            # The lower sum rounds to >= 1: prefer the direct tail sum.
            upper = [log_overlap_pmf(k, pool_size, u) for u in range(q, k + 1)]
            return logsumexp(upper)
        return log1mexp(log_lower)

    upper_terms = [log_overlap_pmf(k, pool_size, u) for u in range(q, k + 1)]
    return logsumexp(upper_terms)


def overlap_survival(key_ring_size: int, pool_size: int, q: int) -> float:
    """Return ``s(K, P, q)`` — the paper's key-graph edge probability."""
    check_key_parameters(key_ring_size, pool_size, q)
    if q == 0:
        return 1.0
    seq = _pmf_recurrence(key_ring_size, pool_size)
    if seq is not None:
        tail = math.fsum(seq[q:])
        if tail > 0.0:
            return min(tail, 1.0)
    ls = log_overlap_survival(key_ring_size, pool_size, q)
    return math.exp(ls) if ls > float("-inf") else 0.0


def overlap_cdf(key_ring_size: int, pool_size: int, u: int) -> float:
    """Return ``P[overlap <= u]``."""
    _check(key_ring_size, pool_size)
    u = check_nonnegative_int(u, "u")
    if u >= key_ring_size:
        return 1.0
    return 1.0 - overlap_survival(key_ring_size, pool_size, u + 1)


def overlap_mean(key_ring_size: int, pool_size: int) -> float:
    """Return ``E[|S_i ∩ S_j|] = K^2 / P`` (exact hypergeometric mean)."""
    _check(key_ring_size, pool_size)
    return key_ring_size * key_ring_size / pool_size


def no_overlap_probability(key_ring_size: int, pool_size: int) -> float:
    """Return ``P[overlap = 0] = C(P-K, K) / C(P, K)``.

    This is ``1 - s(K, P, 1)``, the non-edge probability of the
    Eschenauer–Gligor (q = 1) key graph.
    """
    return overlap_pmf(key_ring_size, pool_size, 0)


def cross_overlap_survival(
    ring_size_a: int, ring_size_b: int, pool_size: int, q: int
) -> float:
    """Return ``P[|S_a ∩ S_b| >= q]`` for rings of *different* sizes.

    The heterogeneous (Eletreby–Yağan) model draws class-``i`` nodes a
    uniform ``K_i``-subset; the overlap of a ``K_a``-ring and a
    ``K_b``-ring is hypergeometric with

        P[overlap = u] = C(K_b, u) C(P - K_b, K_a - u) / C(P, K_a)

    and the class-pair edge probability is the upper tail at ``q``.
    Reduces to :func:`overlap_survival` when ``K_a == K_b``.  Computed by
    log-space tail summation — the sizes here are per-class constants, so
    the ratio-recurrence fast path is not needed.
    """
    ring_size_a, pool_size, _ = check_key_parameters(ring_size_a, pool_size, 1)
    ring_size_b, pool_size, _ = check_key_parameters(ring_size_b, pool_size, 1)
    q = check_nonnegative_int(q, "q")
    if q == 0:
        return 1.0
    a, b, p = ring_size_a, ring_size_b, pool_size
    hi = min(a, b)
    if q > hi:
        return 0.0
    log_denom = log_binomial(p, a)
    terms = []
    for u in range(q, hi + 1):
        num = log_binomial(b, u) + log_binomial(p - b, a - u)
        if num > float("-inf"):
            terms.append(num - log_denom)
    if not terms:
        return 0.0
    ls = logsumexp(terms)
    return min(math.exp(ls), 1.0) if ls > float("-inf") else 0.0


def overlap_survival_batch(
    key_ring_sizes: Sequence[int], pool_size: int, q: int
) -> np.ndarray:
    """Vectorized ``s(K, P, q)`` over several ring sizes (design sweeps)."""
    return np.array(
        [overlap_survival(int(k), pool_size, q) for k in key_ring_sizes],
        dtype=np.float64,
    )
