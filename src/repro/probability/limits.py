"""The k-connectivity limit law and the α ↔ edge-probability transforms.

Theorem 1 (and Lemma 7 for Erdős–Rényi graphs, Lemma 8 for minimum
degree) all share one limit law: with the deviation ``α_n`` defined by

    t_n = (ln n + (k - 1) ln ln n + α_n) / n                      (Eq. 6)

the probability of the property converges to

    F(α*, k) = exp( - e^{-α*} / (k - 1)! )                        (Eq. 7)

This module implements the law, the deviation transform and its inverse,
and the critical edge probability / thresholds derived from them.  The
double-exponential ``F`` is the Gumbel distribution function when
``k = 1`` — a fact used by property tests.
"""

from __future__ import annotations

import math

from repro.exceptions import ParameterError
from repro.utils.logmath import log_factorial
from repro.utils.validation import (
    check_finite_float,
    check_positive_int,
    check_probability,
)

__all__ = [
    "limit_probability",
    "limit_probability_inverse",
    "alpha_from_edge_probability",
    "edge_probability_from_alpha",
    "critical_edge_probability",
]


def limit_probability(alpha: float, k: int = 1) -> float:
    """Return ``exp(-e^{-alpha} / (k-1)!)`` — the Theorem 1 limit (Eq. 7).

    ``alpha`` may be ``±inf``: ``+inf`` maps to probability 1 and
    ``-inf`` to 0, matching the zero–one law (Eqs. 8b–8c).
    """
    k = check_positive_int(k, "k")
    if math.isnan(alpha):
        raise ParameterError("alpha must not be NaN")
    if alpha == float("inf"):
        return 1.0
    if alpha == float("-inf"):
        return 0.0
    log_rate = -alpha - log_factorial(k - 1)
    # Guard exp overflow for very negative alpha: rate -> inf, prob -> 0.
    if log_rate > 700.0:
        return 0.0
    return math.exp(-math.exp(log_rate))


def limit_probability_inverse(prob: float, k: int = 1) -> float:
    """Return the ``alpha`` with ``limit_probability(alpha, k) = prob``.

    Inverse of Eq. (7): ``p = exp(-e^{-α}/(k-1)!)`` gives
    ``α = -ln(-ln p) - ln (k-1)!``.  The endpoints map to ``±inf``.
    This is the primitive behind "design for a target k-connectivity
    probability".
    """
    k = check_positive_int(k, "k")
    prob = check_probability(prob, "prob")
    if prob == 0.0:
        return float("-inf")
    if prob == 1.0:
        return float("inf")
    return -math.log(-math.log(prob)) - log_factorial(k - 1)


def alpha_from_edge_probability(edge_prob: float, num_nodes: int, k: int = 1) -> float:
    """Solve Eq. (6) for ``α_n`` given the edge probability ``t_n``.

    ``α_n = n t_n - ln n - (k-1) ln ln n``.
    """
    edge_prob = check_probability(edge_prob, "edge_prob")
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    k = check_positive_int(k, "k")
    if num_nodes <= 2 and k > 1:
        raise ParameterError("k > 1 requires num_nodes > 2 for ln ln n")
    n = float(num_nodes)
    extra = (k - 1) * math.log(math.log(n)) if k > 1 else 0.0
    return n * edge_prob - math.log(n) - extra


def edge_probability_from_alpha(alpha: float, num_nodes: int, k: int = 1) -> float:
    """Solve Eq. (6) for ``t_n`` given the deviation ``α_n``.

    ``t_n = (ln n + (k-1) ln ln n + α) / n``.  Raises if the resulting
    value is not a probability — that signals an infeasible design point
    (e.g. asking for huge ``α`` at small ``n``).
    """
    alpha = check_finite_float(alpha, "alpha")
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    k = check_positive_int(k, "k")
    if num_nodes <= 2 and k > 1:
        raise ParameterError("k > 1 requires num_nodes > 2 for ln ln n")
    n = float(num_nodes)
    extra = (k - 1) * math.log(math.log(n)) if k > 1 else 0.0
    t = (math.log(n) + extra + alpha) / n
    if not 0.0 <= t <= 1.0:
        raise ParameterError(
            f"alpha={alpha} at n={num_nodes}, k={k} implies edge probability "
            f"{t:.6g} outside [0, 1]"
        )
    return t


def critical_edge_probability(num_nodes: int, k: int = 1) -> float:
    """Return the critical scaling ``(ln n + (k-1) ln ln n) / n`` (α = 0).

    Theorem 1 identifies this as the exact k-connectivity threshold for
    ``G_{n,q}``; for ``k = 1`` it reduces to the classical ``ln n / n``
    used by the paper's Eq. (9) design rule.
    """
    return edge_probability_from_alpha(0.0, num_nodes, k)
