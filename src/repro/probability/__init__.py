"""Probability substrate: overlap distribution, limit laws, couplings."""

from repro.probability.asymptotics import (
    asymptotic_relative_error,
    asymptotics_report,
    edge_probability_asymptotic,
    key_ring_size_for_edge_probability,
    log_edge_probability_asymptotic,
)
from repro.probability.couplings import (
    binomial_key_probability,
    binomial_ring_tail_probability,
    coupled_er_probability,
    coupled_er_probability_full,
    coupling_report,
    coupling_success_probability,
)
from repro.probability.hypergeometric import (
    log_overlap_pmf,
    log_overlap_survival,
    no_overlap_probability,
    overlap_cdf,
    overlap_mean,
    overlap_pmf,
    overlap_pmf_vector,
    overlap_survival,
)
from repro.probability.limits import (
    alpha_from_edge_probability,
    critical_edge_probability,
    edge_probability_from_alpha,
    limit_probability,
    limit_probability_inverse,
)
from repro.probability.poisson import (
    poisson_cdf,
    poisson_log_pmf,
    poisson_pmf,
    poisson_pmf_vector,
    poisson_total_variation,
    total_variation_from_counts,
)

__all__ = [
    "asymptotic_relative_error",
    "asymptotics_report",
    "edge_probability_asymptotic",
    "key_ring_size_for_edge_probability",
    "log_edge_probability_asymptotic",
    "binomial_key_probability",
    "binomial_ring_tail_probability",
    "coupled_er_probability",
    "coupled_er_probability_full",
    "coupling_report",
    "coupling_success_probability",
    "log_overlap_pmf",
    "log_overlap_survival",
    "no_overlap_probability",
    "overlap_cdf",
    "overlap_mean",
    "overlap_pmf",
    "overlap_pmf_vector",
    "overlap_survival",
    "alpha_from_edge_probability",
    "critical_edge_probability",
    "edge_probability_from_alpha",
    "limit_probability",
    "limit_probability_inverse",
    "poisson_cdf",
    "poisson_log_pmf",
    "poisson_pmf",
    "poisson_pmf_vector",
    "poisson_total_variation",
    "total_variation_from_counts",
]
