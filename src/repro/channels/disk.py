"""The disk (random geometric) channel model — related-work extension.

Section IX of the paper contrasts the on/off channel with the *disk
model*: sensors are scattered over a bounded region and two sensors can
communicate iff their distance is at most a transmission radius ``r``.
A zero–one law for the q-composite scheme under the disk model is posed
as an open question; the library ships the model so users can run the
side-by-side comparison experiments (see ``benchmarks/test_bench_disk.py``).

Nodes are placed uniformly at random on the unit square, or on the unit
torus when boundary effects should be suppressed (the torus makes the
pairwise link probability exactly ``π r²`` for ``r <= 1/2``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.channels.base import ChannelModel, ChannelRealization
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int

__all__ = ["DiskChannel", "DiskRealization"]


class DiskRealization(ChannelRealization):
    """Fixed node placement; channels are distance-threshold links."""

    def __init__(
        self,
        num_nodes: int,
        radius: float,
        torus: bool,
        seed: RandomState = None,
    ) -> None:
        super().__init__(check_positive_int(num_nodes, "num_nodes"))
        if not 0.0 < radius <= math.sqrt(2.0):
            raise ValueError(f"radius must lie in (0, sqrt(2)], got {radius}")
        self.radius = float(radius)
        self.torus = bool(torus)
        rng = as_generator(seed)
        self.positions = rng.random((self.num_nodes, 2))

    def _pair_distances(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        delta = np.abs(self.positions[a] - self.positions[b])
        if self.torus:
            delta = np.minimum(delta, 1.0 - delta)
        return np.sqrt((delta * delta).sum(axis=1))

    def edge_mask(self, edges: np.ndarray) -> np.ndarray:
        edges = np.asarray(edges, dtype=np.int64)
        if edges.size == 0:
            return np.zeros(0, dtype=bool)
        return self._pair_distances(edges[:, 0], edges[:, 1]) <= self.radius

    def channel_edges(self) -> np.ndarray:
        """All links within range, via grid bucketing (``O(n)`` expected).

        Cells of side ``r`` partition the square; only pairs in the same
        or adjacent cells can be within range, so candidate pairs are
        gathered per neighboring-cell pair and distance-filtered.
        """
        n = self.num_nodes
        r = self.radius
        cells_per_side = max(1, int(1.0 / r))
        cell = np.minimum(
            (self.positions / (1.0 / cells_per_side)).astype(np.int64),
            cells_per_side - 1,
        )
        buckets: dict = {}
        for i in range(n):
            buckets.setdefault((int(cell[i, 0]), int(cell[i, 1])), []).append(i)

        pairs_a, pairs_b = [], []
        offsets = [(-1, -1), (-1, 0), (-1, 1), (0, -1), (0, 0), (0, 1), (1, -1), (1, 0), (1, 1)]
        for (cx, cy), members in buckets.items():
            for dx, dy in offsets:
                nx_, ny_ = cx + dx, cy + dy
                if self.torus:
                    nx_ %= cells_per_side
                    ny_ %= cells_per_side
                other = buckets.get((nx_, ny_))
                if other is None:
                    continue
                for i in members:
                    for j in other:
                        if i < j:
                            pairs_a.append(i)
                            pairs_b.append(j)
        if not pairs_a:
            return np.empty((0, 2), dtype=np.int64)
        a = np.array(pairs_a, dtype=np.int64)
        b = np.array(pairs_b, dtype=np.int64)
        # Neighboring-cell enumeration can emit a pair twice (via both
        # cells); dedupe through the canonical encoding.
        keys = np.unique(a * np.int64(n) + b)
        a = keys // n
        b = keys % n
        keep = self._pair_distances(a, b) <= self.radius
        out = np.empty((int(keep.sum()), 2), dtype=np.int64)
        out[:, 0] = a[keep]
        out[:, 1] = b[keep]
        return out


class DiskChannel(ChannelModel):
    """Factory for disk-model realizations with transmission radius ``r``."""

    def __init__(self, radius: float, *, torus: bool = True) -> None:
        if not 0.0 < radius <= math.sqrt(2.0):
            raise ValueError(f"radius must lie in (0, sqrt(2)], got {radius}")
        self.radius = float(radius)
        self.torus = bool(torus)

    def sample(self, num_nodes: int, seed: RandomState = None) -> DiskRealization:
        return DiskRealization(num_nodes, self.radius, self.torus, seed)

    def edge_probability(self) -> float:
        """Marginal link probability for uniformly placed nodes.

        Exact ``π r²`` on the torus (for ``r <= 1/2``); on the square the
        boundary-corrected closed form (Philip 2007) is used.
        """
        r = self.radius
        if self.torus:
            if r <= 0.5:
                return math.pi * r * r
            raise ValueError(
                "torus edge probability implemented for radius <= 1/2 only"
            )
        if r <= 1.0:
            return r * r * (math.pi - 8.0 * r / 3.0 + r * r / 2.0)
        raise ValueError("square edge probability implemented for radius <= 1 only")

    @classmethod
    def for_edge_probability(cls, prob: float, *, torus: bool = True) -> "DiskChannel":
        """Disk channel whose marginal link probability equals *prob*.

        Enables matched-edge-probability comparisons against the on/off
        model (the open-question experiment of Section IX).
        """
        if not 0.0 < prob < 1.0:
            raise ValueError(f"prob must lie in (0, 1), got {prob}")
        if torus:
            radius = math.sqrt(prob / math.pi)
            if radius > 0.5:
                raise ValueError("prob too large for the torus closed form")
            return cls(radius, torus=True)
        # Bisect the monotone square-region formula.
        lo, hi = 1e-9, 1.0
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if cls(mid, torus=False).edge_probability() < prob:
                lo = mid
            else:
                hi = mid
        return cls(0.5 * (lo + hi), torus=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiskChannel(radius={self.radius}, torus={self.torus})"
