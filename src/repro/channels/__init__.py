"""Channel models: on/off (Erdős–Rényi) and disk (random geometric)."""

from repro.channels.base import ChannelModel, ChannelRealization
from repro.channels.composite import CompositeChannel, CompositeRealization
from repro.channels.disk import DiskChannel, DiskRealization
from repro.channels.onoff import OnOffChannel, OnOffRealization, sample_onoff_mask

__all__ = [
    "ChannelModel",
    "ChannelRealization",
    "CompositeChannel",
    "CompositeRealization",
    "DiskChannel",
    "DiskRealization",
    "OnOffChannel",
    "OnOffRealization",
    "sample_onoff_mask",
]
