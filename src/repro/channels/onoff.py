"""The on/off channel model (independent Bernoulli channels).

Each of the ``n(n-1)/2`` channels is *on* with probability ``p``
independently — exactly the Erdős–Rényi overlay ``G(n, p)`` of the
paper's Eq. (1).  The realization samples channel states lazily and
caches them, so masking the key-graph's candidate edges costs
``O(m_candidates)`` instead of ``O(n^2)``, while repeated queries stay
consistent (required when the WSN layer re-evaluates the topology after
failures).
"""

from __future__ import annotations

import numpy as np

from repro.channels.base import ChannelModel, ChannelRealization
from repro.graphs.generators import erdos_renyi_edges, pair_index_to_edge
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int, check_probability

__all__ = ["OnOffChannel", "OnOffRealization", "sample_onoff_mask"]


def sample_onoff_mask(
    num_edges: int, prob: float, seed: RandomState = None
) -> np.ndarray:
    """One-shot Bernoulli(p) mask over *num_edges* candidate edges.

    The stateless fast path used by the Monte Carlo engine: when each
    candidate edge is examined exactly once, lazy caching is pure
    overhead and an i.i.d. vector is exactly equivalent.
    """
    if num_edges < 0:
        raise ValueError(f"num_edges must be >= 0, got {num_edges}")
    prob = check_probability(prob, "prob")
    if prob == 1.0:
        return np.ones(num_edges, dtype=bool)
    rng = as_generator(seed)
    return rng.random(num_edges) < prob


class OnOffRealization(ChannelRealization):
    """Lazily sampled, cached on/off channel states for one deployment."""

    def __init__(self, num_nodes: int, prob: float, seed: RandomState = None) -> None:
        super().__init__(check_positive_int(num_nodes, "num_nodes"))
        self.prob = check_probability(prob, "prob", allow_zero=False)
        self._rng = as_generator(seed)
        # Cache as parallel sorted arrays: known pair keys (u * n + v,
        # u < v) and their on/off states, queried with searchsorted.
        self._known_keys = np.empty(0, dtype=np.int64)
        self._known_states = np.empty(0, dtype=bool)

    def edge_mask(self, edges: np.ndarray) -> np.ndarray:
        edges = np.asarray(edges, dtype=np.int64)
        if edges.size == 0:
            return np.zeros(0, dtype=bool)
        lo = np.minimum(edges[:, 0], edges[:, 1])
        hi = np.maximum(edges[:, 0], edges[:, 1])
        keys = lo * np.int64(self.num_nodes) + hi
        # Dedupe the query so repeated pairs inside one batch share one
        # state, then split hit/miss with one searchsorted pass.
        uniq, inverse = np.unique(keys, return_inverse=True)
        pos = np.searchsorted(self._known_keys, uniq)
        hit = np.zeros(uniq.size, dtype=bool)
        in_range = pos < self._known_keys.size
        hit[in_range] = self._known_keys[pos[in_range]] == uniq[in_range]
        states = np.empty(uniq.size, dtype=bool)
        states[hit] = self._known_states[pos[hit]]
        miss = ~hit
        if miss.any():
            fresh = self._rng.random(int(miss.sum())) < self.prob
            states[miss] = fresh
            merged = np.concatenate([self._known_keys, uniq[miss]])
            order = np.argsort(merged, kind="stable")
            self._known_keys = merged[order]
            self._known_states = np.concatenate([self._known_states, fresh])[order]
        return states[inverse]

    def channel_edges(self) -> np.ndarray:
        """Materialize the full channel graph consistently with the cache.

        Enumerates all pairs; pairs already queried keep their cached
        state, the rest are drawn now and cached.
        """
        n = self.num_nodes
        total = n * (n - 1) // 2
        pairs = pair_index_to_edge(n, np.arange(total, dtype=np.int64))
        mask = self.edge_mask(pairs)
        return pairs[mask]


class OnOffChannel(ChannelModel):
    """Factory for on/off channel realizations with on-probability ``p``."""

    def __init__(self, prob: float) -> None:
        self.prob = check_probability(prob, "prob", allow_zero=False)

    def sample(self, num_nodes: int, seed: RandomState = None) -> OnOffRealization:
        return OnOffRealization(num_nodes, self.prob, seed)

    def edge_probability(self) -> float:
        return self.prob

    def sample_channel_graph_edges(
        self, num_nodes: int, seed: RandomState = None
    ) -> np.ndarray:
        """Sample the full channel graph directly as ``G(n, p)`` edges.

        Independent of :meth:`sample`; use when the channel graph itself
        is the object of study (Lemma 7 experiments).
        """
        return erdos_renyi_edges(num_nodes, self.prob, seed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OnOffChannel(prob={self.prob})"
