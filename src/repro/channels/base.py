"""Channel model interfaces.

A *channel model* decides, independently of the key assignment, which
node-to-node channels can carry traffic.  The paper's main model is the
on/off channel (an Erdős–Rényi overlay); the disk model appears in its
related-work discussion and is provided as an extension for comparison
experiments.

A model is split from its *realization*: ``sample()`` fixes the random
state of every channel for one deployment, after which masking the same
edge twice gives the same answer — the property the coupling arguments
and the failure-injection layer rely on.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.utils.rng import RandomState

__all__ = ["ChannelModel", "ChannelRealization"]


class ChannelRealization(abc.ABC):
    """Fixed channel state for one deployment of ``n`` nodes."""

    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = int(num_nodes)

    @abc.abstractmethod
    def edge_mask(self, edges: np.ndarray) -> np.ndarray:
        """Boolean vector: is the channel *on* for each candidate edge?

        *edges* is an ``(m, 2)`` array of node pairs.  Must be
        deterministic across repeated queries of the same pair within
        one realization.
        """

    @abc.abstractmethod
    def channel_edges(self) -> np.ndarray:
        """Full ``(m, 2)`` edge array of the channel graph itself.

        May be expensive (it enumerates all ``n(n-1)/2`` channels for
        the on/off model); simulation hot paths use :meth:`edge_mask` on
        candidate edges instead.
        """


class ChannelModel(abc.ABC):
    """Factory of channel realizations."""

    @abc.abstractmethod
    def sample(self, num_nodes: int, seed: RandomState = None) -> ChannelRealization:
        """Draw the channel state for a deployment of *num_nodes* sensors."""

    @abc.abstractmethod
    def edge_probability(self) -> float:
        """Marginal probability that a given channel is usable.

        For the on/off model this is exactly ``p``; for the disk model it
        is the probability that two independently placed nodes fall
        within transmission range.
        """
