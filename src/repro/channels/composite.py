"""Composite channel: the conjunction of several physical constraints.

Reference [38] of the paper studies secure WSNs under *transmission
constraints*: a link needs the key predistribution condition AND a
working channel AND geometric reachability.  :class:`CompositeChannel`
models any such conjunction by AND-ing the edge masks of its member
channel models — e.g. ``CompositeChannel([OnOffChannel(0.8),
DiskChannel(0.15)])`` yields the triple intersection
``G_q ∩ G(n, p) ∩ RGG(n, r)`` when composed through
:class:`~repro.wsn.network.SecureWSN`.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.channels.base import ChannelModel, ChannelRealization
from repro.utils.rng import RandomState, spawn_generators

__all__ = ["CompositeChannel", "CompositeRealization"]


class CompositeRealization(ChannelRealization):
    """Fixed joint state: a channel is on iff it is on in every member."""

    def __init__(self, members: List[ChannelRealization]) -> None:
        if not members:
            raise ValueError("CompositeRealization needs at least one member")
        nodes = {m.num_nodes for m in members}
        if len(nodes) != 1:
            raise ValueError(f"member realizations disagree on num_nodes: {nodes}")
        super().__init__(members[0].num_nodes)
        self.members = members

    def edge_mask(self, edges: np.ndarray) -> np.ndarray:
        edges = np.asarray(edges, dtype=np.int64)
        if edges.size == 0:
            return np.zeros(0, dtype=bool)
        mask = self.members[0].edge_mask(edges)
        for member in self.members[1:]:
            if not mask.any():
                break
            # Query every member on all edges (not just survivors) so the
            # realization stays consistent under repeated/partial queries.
            mask = mask & member.edge_mask(edges)
        return mask

    def channel_edges(self) -> np.ndarray:
        edges = self.members[0].channel_edges()
        for member in self.members[1:]:
            if edges.size == 0:
                break
            keep = member.edge_mask(edges)
            edges = edges[keep]
        return edges


class CompositeChannel(ChannelModel):
    """AND-composition of independent channel models."""

    def __init__(self, members: Sequence[ChannelModel]) -> None:
        members = list(members)
        if not members:
            raise ValueError("CompositeChannel needs at least one member")
        self.members = members

    def sample(self, num_nodes: int, seed: RandomState = None) -> CompositeRealization:
        seeds = spawn_generators(seed, len(self.members))
        return CompositeRealization(
            [m.sample(num_nodes, s) for m, s in zip(self.members, seeds)]
        )

    def edge_probability(self) -> float:
        """Product of member marginals (members are independent)."""
        prob = 1.0
        for member in self.members:
            prob *= member.edge_probability()
        return prob

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(m) for m in self.members)
        return f"CompositeChannel([{inner}])"
