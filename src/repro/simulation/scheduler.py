"""Fault-tolerant per-unit work scheduling on the warm pool.

:func:`repro.simulation.pool.submit_batches` treats a batch list as
all-or-nothing: one raising batch cancels the rest and the only
recovery is a single whole-list retry on :class:`BrokenProcessPool`.
That is the wrong unit of failure for a sharded study service — losing
one ``(group, size, K-column, trial-block)`` work unit must not throw
away every other unit's completed work.  This module supervises units
*individually*:

* **bounded retries with jittered backoff** — a failed attempt (crash,
  drop, corrupt result, timeout, pool break) is re-queued up to
  ``max_retries`` times, with deterministic exponential-backoff jitter;
* **per-unit timeout** — an attempt running past ``unit_timeout`` is
  declared lost and retried; the original may still land later, in
  which case its result is deduplicated (see below), never lost and
  never double-counted;
* **speculative re-execution** — a unit still running after
  ``speculate_after`` seconds gets a duplicate attempt when a worker
  slot is free; the first completed result wins, and when both finish
  the supervisor *asserts* they are bit-identical (the engine's
  determinism contract makes re-execution safe) and counts the dedup;
* **result integrity** — workers ship results in an envelope carrying
  a checksum computed at the source; the supervisor re-validates on
  receipt, so truncated/corrupted shards are retried instead of folded
  into the tensor;
* **quarantine + graceful degradation** — a unit exhausting its budget
  is dead-lettered into the :class:`FaultReport`; the run returns
  partial results (``None`` per dead unit → ``NaN`` cells in the merge
  substrate) instead of discarding completed shards, unless the caller
  demands completeness (``allow_partial=False`` →
  :class:`~repro.exceptions.DeadUnitError`).

Determinism is unchanged: work units carry their own absolute-trial
seeds, so any retry or speculative duplicate computes bit-identical
values, and a run that converges under injected faults
(:mod:`repro.simulation.faults`) equals the fault-free one-shot run
exactly — the chaos convergence suite in CI proves it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import heapq
import json
import pickle
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import (
    CorruptResultError,
    DeadUnitError,
    InjectedFailure,
    ParameterError,
    SchedulerError,
    UnitTimeoutError,
)
from repro.simulation import pool as pool_mod
from repro.simulation.engine import default_workers
from repro.simulation.faults import ChaosSpec, FailureInjector, chaos_from_env
from repro.utils.rng import grid_seed_sequence

__all__ = [
    "SchedulerPolicy",
    "FaultReport",
    "run_units",
    "resolve_scheduler_policy",
    "combine_fault_reports",
    "payload_checksum",
]

#: Leading spawn-key index reserving the backoff-jitter stream, so it
#: never collides with strategy-decision streams (faults.py) under the
#: same chaos seed.
_BACKOFF_KEY = 101


@dataclasses.dataclass(frozen=True)
class SchedulerPolicy:
    """Knobs of one supervised run.

    Attributes
    ----------
    max_retries:
        Failed attempts a unit may accumulate beyond its first try
        before it is quarantined.
    unit_timeout:
        Seconds an attempt may run before being declared lost and
        retried (``None`` disables; supervision cannot preempt the
        worker, so a hung attempt keeps its process busy until it
        returns — pair with CI-level test timeouts for true hangs).
    speculate_after:
        Age in seconds after which a still-running unit earns a
        duplicate attempt when a worker slot is idle (``None``
        disables speculation).
    backoff_base / backoff_cap / backoff_jitter:
        Retry *k* of a unit sleeps ``min(cap, base * 2**(k-1)) * (1 +
        jitter * u)`` where ``u`` is a deterministic per-``(unit, k)``
        uniform — jittered so retry storms decorrelate, deterministic
        so runs reproduce.
    chaos:
        Optional :class:`~repro.simulation.faults.ChaosSpec` injected
        around every unit execution (the CI fault harness).
    allow_partial:
        When ``False``, dead units raise
        :class:`~repro.exceptions.DeadUnitError` instead of degrading
        to a partial result.
    """

    max_retries: int = 3
    unit_timeout: Optional[float] = None
    speculate_after: Optional[float] = None
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    backoff_jitter: float = 0.5
    chaos: Optional[ChaosSpec] = None
    allow_partial: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.max_retries, int) or self.max_retries < 0:
            raise ParameterError(
                f"max_retries must be a non-negative int, got {self.max_retries!r}"
            )
        if self.unit_timeout is not None and not self.unit_timeout > 0:
            raise ParameterError(
                f"unit_timeout must be positive, got {self.unit_timeout}"
            )
        if self.speculate_after is not None and not self.speculate_after >= 0:
            raise ParameterError(
                f"speculate_after must be >= 0, got {self.speculate_after}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0 or self.backoff_jitter < 0:
            raise ParameterError("backoff parameters must be >= 0")
        if self.chaos is not None and not isinstance(self.chaos, ChaosSpec):
            object.__setattr__(self, "chaos", ChaosSpec.from_dict(self.chaos))

    def to_dict(self) -> Dict[str, object]:
        return {
            "max_retries": self.max_retries,
            "unit_timeout": self.unit_timeout,
            "speculate_after": self.speculate_after,
            "backoff_base": self.backoff_base,
            "backoff_cap": self.backoff_cap,
            "backoff_jitter": self.backoff_jitter,
            "chaos": self.chaos.to_dict() if self.chaos else None,
            "allow_partial": self.allow_partial,
        }


def resolve_scheduler_policy(
    policy: Optional[SchedulerPolicy],
) -> Optional[SchedulerPolicy]:
    """An explicit policy wins; else ``REPRO_CHAOS`` implies a default one.

    Returns ``None`` when scheduling should stay on the plain
    ``run_batches`` path — the zero-overhead default.
    """
    if policy is not None:
        return policy
    chaos = chaos_from_env()
    if chaos is not None:
        return SchedulerPolicy(chaos=chaos)
    return None


# -- fault accounting --------------------------------------------------


_EVENT_CAP = 200

_events_mod = None


def _emit(kind: str, **fields: object) -> None:
    """Publish a progress event on the service bus, if anyone listens.

    Imported lazily: the scheduler must not import the service layer at
    module load (service → study → scheduler is the forward direction).
    A bus with no subscribers makes this a near-free no-op.
    """
    global _events_mod
    if _events_mod is None:
        from repro.service import events as _events

        _events_mod = _events
    _events_mod.emit(kind, **fields)


@dataclasses.dataclass
class FaultReport:
    """Structured record of everything that went wrong (and was survived).

    Attached to study provenance under ``"faults"``; the dead-letter
    list is the degradation contract — every unit there corresponds to
    ``NaN`` (unevaluated) cells in the returned partial result.
    """

    units: int = 0
    completed: int = 0
    attempts: int = 0
    retries: int = 0
    speculative: int = 0
    dedup_identical: int = 0
    crashes: int = 0
    errors: int = 0
    timeouts: int = 0
    drops: int = 0
    corrupt: int = 0
    delays: int = 0
    pool_breaks: int = 0
    dead_units: List[Dict[str, object]] = dataclasses.field(default_factory=list)
    events: List[Dict[str, object]] = dataclasses.field(default_factory=list)

    _COUNTERS = (
        "units", "completed", "attempts", "retries", "speculative",
        "dedup_identical", "crashes", "errors", "timeouts", "drops",
        "corrupt", "delays", "pool_breaks",
    )

    @property
    def faulted(self) -> bool:
        """Whether anything at all deviated from the happy path."""
        return bool(
            self.retries or self.speculative or self.dedup_identical
            or self.crashes or self.errors or self.timeouts or self.drops
            or self.corrupt or self.delays or self.pool_breaks
            or self.dead_units
        )

    def record(self, unit: int, attempt: int, kind: str, detail: str = "") -> None:
        if len(self.events) < _EVENT_CAP:
            event: Dict[str, object] = {"unit": unit, "attempt": attempt, "kind": kind}
            if detail:
                event["detail"] = detail
            self.events.append(event)
        if kind == "quarantine":
            _emit("fault_quarantined", unit=unit, attempt=attempt, detail=detail)

    def summary(self) -> str:
        parts = [f"{self.completed}/{self.units} units"]
        for name in (
            "retries", "speculative", "dedup_identical", "crashes", "errors",
            "timeouts", "drops", "corrupt", "delays", "pool_breaks",
        ):
            value = getattr(self, name)
            if value:
                parts.append(f"{name}={value}")
        if self.dead_units:
            parts.append(f"dead={[d['unit_index'] for d in self.dead_units]}")
        return ", ".join(parts)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {name: getattr(self, name) for name in self._COUNTERS}
        out["dead_units"] = list(self.dead_units)
        out["events"] = list(self.events)
        return out


def combine_fault_reports(reports: Sequence[Optional[Dict[str, object]]]) -> Optional[Dict[str, object]]:
    """Fold fault-report dicts from rounds / shards / resubmissions.

    Counters sum; dead-letter and event lists concatenate (events stay
    capped).  ``None`` entries (rounds that ran unsupervised) are
    skipped; all-``None`` input folds to ``None``.

    Folding is idempotent against service-level resubmission: a report
    that appears twice (the cache folds a stored report back in next to
    a delta run that already included it) is counted once, keyed on its
    canonical JSON form.  Within distinct reports, events and dead
    units are deduplicated on ``(trial window, unit, attempt, kind)`` —
    unit indices are positional per round, so the ``"window"`` stamp
    the compiler writes into each report is what keeps genuinely
    different rounds from colliding.
    """
    live: List[Dict[str, object]] = []
    seen_reports = set()
    for report in reports:
        if not report:
            continue
        key = json.dumps(report, sort_keys=True, default=str)
        if key in seen_reports:
            continue
        seen_reports.add(key)
        live.append(report)
    if not live:
        return None
    total = FaultReport()
    seen_dead = set()
    seen_events = set()
    for report in live:
        for name in FaultReport._COUNTERS:
            setattr(total, name, getattr(total, name) + int(report.get(name, 0)))  # type: ignore[arg-type]
        window = tuple(report.get("window", ()))  # type: ignore[arg-type]
        for dead in report.get("dead_units", ()):  # type: ignore[union-attr]
            dead_window = tuple(dead.get("window", window))
            key = (dead_window, dead.get("unit_index"), str(dead.get("last_error")))
            if key in seen_dead:
                continue
            seen_dead.add(key)
            if dead_window and "window" not in dead:
                # Stamp the source window onto the entry itself, so a
                # combined report folded again later (cache extension
                # upon cache extension) still distinguishes rounds.
                dead = dict(dead)
                dead["window"] = list(dead_window)
            total.dead_units.append(dead)
        for event in report.get("events", ()):  # type: ignore[union-attr]
            event_window = tuple(event.get("window", window))
            key = (
                event_window,
                event.get("unit"),
                event.get("attempt"),
                event.get("kind"),
            )
            if key in seen_events:
                continue
            seen_events.add(key)
            if event_window and "window" not in event:
                event = dict(event)
                event["window"] = list(event_window)
            if len(total.events) < _EVENT_CAP:
                total.events.append(event)
    return total.to_dict()


# -- worker-side execution envelope ------------------------------------


@dataclasses.dataclass
class _Envelope:
    """What a worker ships back for one attempt."""

    unit_index: int
    attempt: int
    payload: object
    checksum: str
    dropped: bool = False
    injected: Tuple[str, ...] = ()


def payload_checksum(payload: object) -> str:
    """Deterministic content hash used for integrity and dedup checks.

    Arrays hash their raw bytes (bit-identical semantics, NaN-safe);
    anything else falls back to pickled bytes.
    """
    digest = hashlib.sha256()
    if isinstance(payload, np.ndarray):
        arr = np.ascontiguousarray(payload)
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    else:
        digest.update(pickle.dumps(payload, protocol=4))
    return digest.hexdigest()


def _execute_unit(
    fn: Callable,
    chaos: Optional[Dict[str, object]],
    task: Tuple[int, int, object, bool],
) -> _Envelope:
    """Run one attempt worker-side, threading the chaos middleware.

    The checksum is computed *before* post-execution injection, so a
    ``partial``-strategy corruption is detectable at the supervisor —
    exactly like a transport-layer checksum on a real shard service.
    """
    unit_index, attempt, unit, inline = task
    injection = None
    injector = None
    if chaos is not None:
        injector = FailureInjector(ChaosSpec.from_dict(chaos))
        injection = injector.plan(unit_index, attempt)
        injector.apply_before(injection, unit_index, attempt, inline)
    payload = fn(unit)
    checksum = payload_checksum(payload)
    dropped = False
    if injection is not None and injector is not None:
        payload, dropped = injector.apply_after(injection, unit_index, attempt, payload)
    return _Envelope(
        unit_index=unit_index,
        attempt=attempt,
        payload=payload,
        checksum=checksum,
        dropped=dropped,
        injected=injection.fired if injection is not None else (),
    )


def _backoff_delay(policy: SchedulerPolicy, unit: int, failure_count: int) -> float:
    base = policy.backoff_base * (2.0 ** max(0, failure_count - 1))
    delay = min(policy.backoff_cap, base)
    seed = policy.chaos.seed if policy.chaos is not None else 0
    u = float(
        np.random.default_rng(
            grid_seed_sequence(seed, _BACKOFF_KEY, unit, failure_count)
        ).random()
    )
    return delay * (1.0 + policy.backoff_jitter * u)


# -- the supervisor ----------------------------------------------------


class _Supervisor:
    """Event loop driving one supervised run over a process pool."""

    def __init__(
        self,
        fn: Callable,
        units: List,
        workers: int,
        policy: SchedulerPolicy,
        report: FaultReport,
    ) -> None:
        self.fn = fn
        self.units = units
        self.workers = workers
        self.policy = policy
        self.report = report
        self.chaos_dict = policy.chaos.to_dict() if policy.chaos else None

        n = len(units)
        self.results: List[Optional[object]] = [None] * n
        self.checksums: List[Optional[str]] = [None] * n
        self.done = [False] * n
        self.num_done = 0
        self.failures = [0] * n
        self.launches = [0] * n
        self.last_error: List[Optional[str]] = [None] * n
        self.ready: List[Tuple[float, int]] = [(0.0, i) for i in range(n)]
        heapq.heapify(self.ready)
        self.inflight: Dict[Future, Tuple[int, int, float]] = {}
        self.zombies: Dict[Future, Tuple[int, int, float]] = {}
        self.inflight_per_unit: Dict[int, int] = {}

        self.warm = pool_mod.persistent_pools_enabled()
        if self.warm:
            self.executor = pool_mod.get_executor(workers)
            pool_mod.acquire_lease(self.executor)
        else:
            self.executor = ProcessPoolExecutor(max_workers=workers)

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        if self.warm:
            pool_mod.release_lease(self.executor)
        else:
            # Zombie attempts (timed out, still running) must not block
            # the caller; the executor reaps them asynchronously.
            self.executor.shutdown(wait=not self.zombies)

    def _fresh_executor(self) -> None:
        if self.warm:
            pool_mod.release_lease(self.executor)
            pool_mod.discard_executor()
            self.executor = pool_mod.get_executor(self.workers)
            pool_mod.acquire_lease(self.executor)
        else:
            self.executor.shutdown(wait=False, cancel_futures=True)
            self.executor = ProcessPoolExecutor(max_workers=self.workers)

    # -- submission ----------------------------------------------------

    def _submit(self, unit: int) -> bool:
        attempt = self.launches[unit]
        self.launches[unit] += 1
        task = (unit, attempt, self.units[unit], False)
        try:
            future = self.executor.submit(_execute_unit, self.fn, self.chaos_dict, task)
        except BrokenProcessPool:
            # A worker died an instant ago and submit itself noticed
            # before wait() could: treat it like any other pool break
            # (the attempted unit is a victim alongside everything in
            # flight) and let the caller stop touching stale state.
            self._handle_pool_break([(unit, attempt, time.monotonic())])
            return False
        self.inflight[future] = (unit, attempt, time.monotonic())
        self.inflight_per_unit[unit] = self.inflight_per_unit.get(unit, 0) + 1
        self.report.attempts += 1
        return True

    def _drain_ready(self, now: float) -> None:
        while self.ready and self.ready[0][0] <= now and len(self.inflight) < self.workers:
            _, unit = heapq.heappop(self.ready)
            if self.done[unit]:
                continue
            self._submit(unit)

    def _speculate(self, now: float) -> None:
        after = self.policy.speculate_after
        if after is None or len(self.inflight) >= self.workers:
            return
        candidates = sorted(self.inflight.values(), key=lambda entry: entry[2])
        for unit, _, submitted in candidates:
            if len(self.inflight) >= self.workers:
                break
            if self.done[unit] or self.inflight_per_unit.get(unit, 0) >= 2:
                continue
            if now - submitted < after:
                break  # sorted by age: younger entries cannot qualify either
            self.report.speculative += 1
            self.report.record(unit, self.launches[unit], "speculate")
            if not self._submit(unit):
                break  # pool broke; the candidate snapshot is stale

    # -- outcomes ------------------------------------------------------

    def _schedule_retry_or_quarantine(self, unit: int, attempt: int, error: str) -> None:
        self.failures[unit] += 1
        self.last_error[unit] = error
        if self.done[unit]:
            return  # a failed duplicate of an already-completed unit
        if self.failures[unit] > self.policy.max_retries:
            # Quarantined: nothing further is scheduled; the unit is
            # dead unless an attempt still in flight lands a result.
            self.report.record(unit, attempt, "quarantine", error)
            return
        self.report.retries += 1
        ready_at = time.monotonic() + _backoff_delay(
            self.policy, unit, self.failures[unit]
        )
        heapq.heappush(self.ready, (ready_at, unit))

    def _record_exception(self, unit: int, attempt: int, exc: BaseException) -> None:
        if isinstance(exc, InjectedFailure):
            self.report.crashes += 1
            kind = "crash"
        elif isinstance(exc, UnitTimeoutError):
            self.report.timeouts += 1
            kind = "timeout"
        else:
            self.report.errors += 1
            kind = "error"
        detail = f"{type(exc).__name__}: {exc}"
        self.report.record(unit, attempt, kind, detail)
        self._schedule_retry_or_quarantine(unit, attempt, detail)

    def _accept(self, unit: int, attempt: int, envelope: _Envelope) -> None:
        if envelope.dropped:
            self.report.drops += 1
            self.report.record(unit, attempt, "drop")
            self._schedule_retry_or_quarantine(unit, attempt, "result dropped")
            return
        checksum = payload_checksum(envelope.payload)
        if checksum != envelope.checksum:
            self.report.corrupt += 1
            exc = CorruptResultError(
                f"unit {unit} attempt {attempt} returned a corrupt result "
                f"(checksum mismatch)",
                unit,
                attempt,
            )
            self.report.record(unit, attempt, "corrupt", str(exc))
            self._schedule_retry_or_quarantine(unit, attempt, str(exc))
            return
        if "delay" in envelope.injected:
            self.report.delays += 1
        if self.done[unit]:
            # Duplicate completion (speculation or a late zombie):
            # determinism makes re-execution bit-identical, and we hold
            # the scheduler to that contract rather than assuming it.
            if checksum != self.checksums[unit]:
                raise SchedulerError(
                    f"speculative re-execution of unit {unit} produced a "
                    f"different result — the determinism contract is broken"
                )
            self.report.dedup_identical += 1
            self.report.record(unit, attempt, "dedup")
            return
        self.results[unit] = envelope.payload
        self.checksums[unit] = checksum
        self.done[unit] = True
        self.num_done += 1
        self.report.completed += 1
        _emit(
            "unit_completed",
            unit=unit,
            attempt=attempt,
            completed=self.num_done,
            units=len(self.units),
        )

    def _handle_pool_break(self, broken: Sequence[Tuple[int, int, float]]) -> None:
        # ``broken`` carries the entries whose futures already raised
        # BrokenProcessPool (popped in the completion loop); everything
        # still tracked in flight died with the same pool.
        self.report.pool_breaks += 1
        victims = sorted(
            {
                unit
                for unit, _, _ in list(broken)
                + list(self.inflight.values())
                + list(self.zombies.values())
                if not self.done[unit]
            }
        )
        self.inflight.clear()
        self.zombies.clear()
        self.inflight_per_unit.clear()
        self._fresh_executor()
        for unit in victims:
            self.report.record(unit, self.launches[unit] - 1, "pool_break")
            self._schedule_retry_or_quarantine(
                unit, self.launches[unit] - 1, "worker pool broke"
            )

    def _expire_timeouts(self, now: float) -> None:
        timeout = self.policy.unit_timeout
        if timeout is None:
            return
        for future, (unit, attempt, submitted) in list(self.inflight.items()):
            if now - submitted < timeout:
                continue
            del self.inflight[future]
            self.inflight_per_unit[unit] = max(0, self.inflight_per_unit.get(unit, 1) - 1)
            was_queued = future.cancel()
            if not was_queued:
                # Still executing: keep listening so a late result is
                # deduplicated (or rescues the unit) instead of leaking.
                self.zombies[future] = (unit, attempt, submitted)
            if self.done[unit]:
                continue
            self._record_exception(
                unit,
                attempt,
                UnitTimeoutError(
                    f"unit {unit} attempt {attempt} exceeded "
                    f"unit_timeout={timeout}s",
                    unit,
                    attempt,
                ),
            )

    # -- the loop ------------------------------------------------------

    def _next_wakeup(self, now: float) -> Optional[float]:
        candidates: List[float] = []
        if self.ready:
            candidates.append(self.ready[0][0])
        if self.policy.unit_timeout is not None:
            candidates.extend(
                submitted + self.policy.unit_timeout
                for _, _, submitted in self.inflight.values()
            )
        if self.policy.speculate_after is not None:
            candidates.extend(
                submitted + self.policy.speculate_after
                for unit, _, submitted in self.inflight.values()
                if not self.done[unit] and self.inflight_per_unit.get(unit, 0) < 2
            )
        if not candidates:
            return None
        return max(0.005, min(candidates) - now)

    def run(self) -> None:
        while self.num_done < len(self.units):
            now = time.monotonic()
            self._drain_ready(now)
            self._speculate(now)
            if not self.inflight:
                if self.ready:
                    time.sleep(max(0.0, min(0.5, self.ready[0][0] - time.monotonic())))
                    continue
                break  # only quarantined units (and maybe zombies) remain
            waitset = set(self.inflight) | set(self.zombies)
            completed, _ = wait(
                waitset,
                timeout=self._next_wakeup(now),
                return_when=FIRST_COMPLETED,
            )
            broken: List[Tuple[int, int, float]] = []
            for future in completed:
                entry = self.inflight.pop(future, None)
                if entry is not None:
                    unit = entry[0]
                    self.inflight_per_unit[unit] = max(
                        0, self.inflight_per_unit.get(unit, 1) - 1
                    )
                else:
                    entry = self.zombies.pop(future, None)
                if entry is None:  # pragma: no cover - defensive
                    continue
                unit, attempt, _ = entry
                try:
                    envelope = future.result()
                except BrokenProcessPool:
                    broken.append(entry)
                except CancelledError:
                    pass  # a timed-out attempt cancelled while queued
                except BaseException as exc:
                    self._record_exception(unit, attempt, exc)
                else:
                    self._accept(unit, attempt, envelope)
            if broken:
                self._handle_pool_break(broken)
                continue
            self._expire_timeouts(time.monotonic())


def _run_inline(
    fn: Callable,
    units: List,
    policy: SchedulerPolicy,
    report: FaultReport,
) -> List[Optional[object]]:
    """Single-worker path: same retry/quarantine semantics, no pool.

    Timeouts and speculation need concurrency and are inert here; the
    chaos middleware still applies (``broken_pool`` degrades to a
    crash so it cannot kill the calling process).
    """
    chaos_dict = policy.chaos.to_dict() if policy.chaos else None
    results: List[Optional[object]] = [None] * len(units)
    for index, unit in enumerate(units):
        failures = 0
        while True:
            attempt = failures  # inline launches are strictly sequential
            report.attempts += 1
            outcome: Optional[str] = None
            try:
                envelope = _execute_unit(fn, chaos_dict, (index, attempt, unit, True))
            except InjectedFailure as exc:
                report.crashes += 1
                outcome = f"{type(exc).__name__}: {exc}"
                report.record(index, attempt, "crash", outcome)
            except BaseException as exc:
                report.errors += 1
                outcome = f"{type(exc).__name__}: {exc}"
                report.record(index, attempt, "error", outcome)
            else:
                if envelope.dropped:
                    report.drops += 1
                    outcome = "result dropped"
                    report.record(index, attempt, "drop")
                elif payload_checksum(envelope.payload) != envelope.checksum:
                    report.corrupt += 1
                    outcome = "corrupt result (checksum mismatch)"
                    report.record(index, attempt, "corrupt")
                else:
                    if "delay" in envelope.injected:
                        report.delays += 1
                    results[index] = envelope.payload
                    report.completed += 1
                    _emit(
                        "unit_completed",
                        unit=index,
                        attempt=attempt,
                        completed=report.completed,
                        units=len(units),
                    )
                    break
            failures += 1
            if failures > policy.max_retries:
                report.record(index, attempt, "quarantine", outcome or "")
                report.dead_units.append(
                    {
                        "unit_index": index,
                        "failures": failures,
                        "last_error": outcome,
                    }
                )
                break
            report.retries += 1
            time.sleep(_backoff_delay(policy, index, failures))
    return results


def run_units(
    fn: Callable,
    units: Sequence,
    workers: Optional[int] = None,
    policy: Optional[SchedulerPolicy] = None,
) -> Tuple[List[Optional[object]], FaultReport]:
    """Run ``fn(unit)`` for every unit under per-unit supervision.

    Returns ``(results, report)`` where ``results`` holds one entry per
    unit in submission order — the unit's payload, or ``None`` for a
    quarantined (dead) unit when ``policy.allow_partial`` — and
    ``report`` is the structured :class:`FaultReport`.

    The drop-in fault-tolerant sibling of
    :func:`repro.simulation.engine.run_batches`: same call shape, same
    in-order results, but per-unit failure domains instead of
    all-or-nothing.
    """
    policy = policy if policy is not None else SchedulerPolicy()
    units = list(units)
    report = FaultReport(units=len(units))
    if not units:
        return [], report
    workers = default_workers() if workers is None else int(workers)
    if workers < 1:
        raise ParameterError(f"workers must be >= 1, got {workers}")
    workers = min(workers, len(units))

    if workers == 1:
        results = _run_inline(fn, units, policy, report)
    else:
        supervisor = _Supervisor(fn, units, workers, policy, report)
        try:
            supervisor.run()
        finally:
            supervisor.close()
        results = supervisor.results
        for index in range(len(units)):
            if not supervisor.done[index]:
                report.dead_units.append(
                    {
                        "unit_index": index,
                        "failures": supervisor.failures[index],
                        "last_error": supervisor.last_error[index],
                    }
                )

    if report.dead_units and not policy.allow_partial:
        dead = [d["unit_index"] for d in report.dead_units]
        raise DeadUnitError(
            f"{len(dead)} work unit(s) exhausted their retry budget "
            f"(max_retries={policy.max_retries}): units {dead}"
        )
    return results, report
