"""Shared-deployment batched sweep engine.

Figure 1 evaluates six ``(q, p)`` curves over the same ``K`` grid, and
both parameters are pure *post-filters* on one sampled world:

* the q-composite edge rule keeps a node pair iff its rings share at
  least ``q`` keys — so the edge sets for ``q = 3`` and ``q = 2`` are
  nested filters of one overlap-count computation;
* the on/off channel keeps a candidate edge iff an independent uniform
  draw lands below ``p`` — so realizing *one* uniform ``U`` per
  candidate edge and thresholding it at every ``p`` (nested thinning)
  gives exactly Bernoulli(``p``) marginals per curve while coupling the
  curves monotonically: the ``p = 0.2`` edge set is a subset of the
  ``p = 0.5`` edge set, which is a subset of the ``p = 1`` edge set.

One deployment (ring sample + overlap counts + one uniform vector)
therefore serves *every* curve.  That is a ~``len(curves)``-fold
wall-clock saving on the dominant sampling cost, and a classic
common-random-numbers variance reduction for curve *differences* —
estimates across curves at the same ``(K, trial)`` are positively
correlated, while distinct trials and ring sizes stay independent.

Determinism: deployment ``(ring_index, trial)`` of a sweep rooted at
``seed`` always uses ``SeedSequence(seed, spawn_key=(ring_index,
trial))``, so results are bit-identical across worker counts and any
single deployment can be replayed in isolation.  The study compiler
extends the same addressing to growth sweeps by prepending a size
index to the spawn key — ``(size_index, ring_index, trial)`` — and
schedules its flattened ``(size, K)`` columns through
:func:`split_trial_blocks` exactly like plain ``K`` columns.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ParameterError
from repro.graphs.unionfind import is_connected_pair_keys
from repro.kernels import get_backend, resolve_backend_name, use_backend
from repro.keygraphs.rings import (
    sample_class_labels,
    sample_class_rings,
    sample_uniform_rings,
)
from repro.keygraphs.uniform_graph import overlap_counts_from_rings
from repro.simulation.engine import run_batches
from repro.simulation.estimators import BernoulliEstimate
from repro.utils.rng import grid_seed_sequence
from repro.utils.validation import (
    check_key_parameters,
    check_positive_int,
    check_probability,
)

__all__ = [
    "SweepSpec",
    "split_trial_blocks",
    "class_pair_probabilities",
    "sweep_curve_masks",
    "sweep_class_curve_masks",
    "sweep_deployment_outcomes",
    "run_sweep_trials",
    "sweep_connectivity_estimates",
]

Curve = Tuple[int, float]


@dataclasses.dataclass(frozen=True)
class SweepSpec:
    """A multi-curve connectivity sweep over one deployment family.

    ``curves`` lists the ``(q, p)`` post-filters evaluated on every
    sampled deployment; ``ring_sizes`` spans the ``K`` grid.  Every
    ``(K, q, p)`` triple must be a valid q-composite parameterization.
    """

    num_nodes: int
    pool_size: int
    ring_sizes: Tuple[int, ...]
    curves: Tuple[Curve, ...]
    trials: int
    seed: Optional[int] = None
    #: Kernel backend name, or ``None`` for ambient resolution (active
    #: backend > ``REPRO_KERNEL_BACKEND`` > reference).  Resolved in the
    #: submitting process before scheduling, so warm-pool workers honor
    #: overrides made after the pool was spawned.  Backends are
    #: decision-identical; this only selects the compute implementation.
    kernel_backend: Optional[str] = None

    def __post_init__(self) -> None:
        check_positive_int(self.num_nodes, "num_nodes")
        check_positive_int(self.pool_size, "pool_size")
        check_positive_int(self.trials, "trials")
        if self.kernel_backend is not None:
            resolve_backend_name(self.kernel_backend)  # raises on unknown
        if not self.ring_sizes:
            raise ParameterError("ring_sizes must be non-empty")
        if not self.curves:
            raise ParameterError("curves must be non-empty")
        object.__setattr__(
            self, "ring_sizes", tuple(int(r) for r in self.ring_sizes)
        )
        object.__setattr__(
            self,
            "curves",
            tuple((int(q), float(p)) for q, p in self.curves),
        )
        for q, p in self.curves:
            check_probability(p, "channel_prob", allow_zero=False)
            for ring in self.ring_sizes:
                check_key_parameters(ring, self.pool_size, q)


def sweep_curve_masks(
    num_nodes: int,
    pool_size: int,
    ring_size: int,
    curves: Sequence[Curve],
    rng: np.random.Generator,
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Sample one shared deployment; return candidate pairs + per-curve masks.

    Returns ``(candidate_pair_keys, masks)`` where ``candidate_pair_keys``
    encodes every node pair sharing at least ``min(q)`` keys as
    ``u * n + v`` and ``masks[i]`` selects the pairs that survive curve
    ``i``'s ``(q, p)`` filter.  The masks are coupled by construction:
    for equal ``q``, the mask at smaller ``p`` is a subset of the mask
    at larger ``p``; for equal ``p``, the mask at larger ``q`` is a
    subset of the mask at smaller ``q``.
    """
    q_min = min(q for q, _ in curves)
    rings = sample_uniform_rings(num_nodes, ring_size, pool_size, rng)
    pair_keys, counts = overlap_counts_from_rings(rings)
    keep = counts >= q_min
    candidates = pair_keys[keep]
    cand_counts = counts[keep]
    # One uniform per candidate edge; thresholding at each p realizes
    # every channel simultaneously (U < 1 always holds, so p = 1 keeps
    # all candidates exactly like the legacy path).
    uniforms = rng.random(candidates.size)
    masks = [
        (cand_counts >= q) & (uniforms < p) if p < 1.0 else cand_counts >= q
        for q, p in curves
    ]
    return candidates, masks


def class_pair_probabilities(
    labels: np.ndarray,
    candidates: np.ndarray,
    num_nodes: int,
    channel_probs: Sequence[Sequence[float]],
) -> np.ndarray:
    """Per-candidate channel probability ``alpha[c(u), c(v)]``.

    The heterogeneous on/off channel turns a candidate edge ``(u, v)``
    on with the class-pair probability, so each candidate's threshold
    is a gather from the ``C x C`` matrix indexed by the endpoint
    labels.  Pure post-processing: no randomness is consumed.
    """
    alpha = np.asarray(channel_probs, dtype=np.float64)
    if alpha.ndim != 2 or alpha.shape[0] != alpha.shape[1]:
        raise ParameterError(
            f"channel_probs must be a square matrix, got shape {alpha.shape}"
        )
    labels = np.asarray(labels, dtype=np.int64)
    u = candidates // num_nodes
    v = candidates % num_nodes
    return alpha[labels[u], labels[v]]


def sweep_class_curve_masks(
    num_nodes: int,
    pool_size: int,
    mu: Sequence[float],
    ring_sizes: Sequence[int],
    channel_probs: Sequence[Sequence[float]],
    curves: Sequence[Curve],
    rng: np.random.Generator,
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Heterogeneous shared deployment: per-class-pair nested thinning.

    The class-mix generalization of :func:`sweep_curve_masks`: one
    sampled world (class labels, per-class mixed-size rings, overlap
    counts, one uniform per candidate edge) serves every ``(q, p)``
    curve, where curve ``p`` scales the whole per-class-pair matrix —
    candidate ``(u, v)`` survives curve ``(q, p)`` iff its overlap is
    at least ``q`` and its uniform lands below ``p * alpha[c(u),
    c(v)]``.  Masks stay monotonically coupled in ``(q, p)`` exactly
    like the homogeneous engine, so lattice deduction remains exact.

    Draw order (part of the determinism contract): labels, rings,
    then one uniform per candidate.
    """
    check_positive_int(num_nodes, "num_nodes")
    if len(ring_sizes) != len(mu):
        raise ParameterError(
            f"ring_sizes declares {len(ring_sizes)} classes but mu "
            f"declares {len(mu)}"
        )
    q_min = min(q for q, _ in curves)
    labels = sample_class_labels(num_nodes, mu, rng)
    rings = sample_class_rings(labels, ring_sizes, pool_size, rng)
    pair_keys, counts = overlap_counts_from_rings(rings)
    keep = counts >= q_min
    candidates = pair_keys[keep]
    cand_counts = counts[keep]
    uniforms = rng.random(candidates.size)
    pair_alpha = class_pair_probabilities(
        labels, candidates, num_nodes, channel_probs
    )
    masks = [
        (cand_counts >= q) & (uniforms < p * pair_alpha) for q, p in curves
    ]
    return candidates, masks


def sweep_deployment_outcomes(
    num_nodes: int,
    pool_size: int,
    ring_size: int,
    curves: Sequence[Curve],
    rng: np.random.Generator,
) -> np.ndarray:
    """One shared deployment → per-curve connectivity indicator vector."""
    candidates, masks = sweep_curve_masks(
        num_nodes, pool_size, ring_size, curves, rng
    )
    out = np.empty(len(masks), dtype=bool)
    for i, mask in enumerate(masks):
        out[i] = is_connected_pair_keys(num_nodes, candidates[mask])
    return out


def _sweep_block(
    spec: SweepSpec, block: Tuple[int, int, int]
) -> np.ndarray:
    """Trials ``[start, stop)`` of one ring column; per-curve success counts."""
    ring_index, start, stop = block
    ring = spec.ring_sizes[ring_index]
    successes = np.zeros(len(spec.curves), dtype=np.int64)
    with use_backend(spec.kernel_backend):
        for trial in range(start, stop):
            rng = np.random.default_rng(
                grid_seed_sequence(spec.seed, ring_index, trial)
            )
            successes += sweep_deployment_outcomes(
                spec.num_nodes, spec.pool_size, ring, spec.curves, rng
            )
    return successes


def split_trial_blocks(
    num_columns: int,
    trials: int,
    workers: int,
    total_columns: Optional[int] = None,
    start: int = 0,
) -> List[Tuple[int, int, int]]:
    """Work units ``(column, start, stop)`` for a columns-by-trials grid.

    Whole columns are the natural work unit (fan-out and IPC amortize
    over all their trials), but when there are fewer columns than
    workers each column splits into ``ceil(workers / columns)``
    contiguous trial blocks so the pool stays busy — the single-``K``
    sweep under-utilization fix.  A "column" is whatever the caller
    flattens to one: the sweep engine passes ``K`` columns, the study
    compiler passes ``size x K`` columns of a size-grid group.
    ``total_columns`` overrides the divisor when the caller schedules
    several column groups into one pool (the study compiler).

    ``start`` restricts the blocks to the trial window ``[start,
    trials)`` — the incremental unit of adaptive trial extension.  An
    empty window (``start >= trials``) yields no blocks, and a window
    smaller than the would-be block count degrades to single-trial
    blocks.  Block boundaries are a pure function of ``(num_columns,
    trials, workers, start)``; they never affect results, only
    parallelism, because every ``(column, trial)`` cell is seeded
    independently by its absolute trial index.
    """
    if start < 0:
        raise ParameterError(f"start must be >= 0, got {start}")
    if start >= trials:
        return []
    divisor = total_columns if total_columns is not None else num_columns
    splits = min(trials - start, max(1, -(-workers // max(divisor, 1))))
    bounds = np.linspace(start, trials, splits + 1, dtype=np.int64)
    return [
        (column, int(bounds[b]), int(bounds[b + 1]))
        for column in range(num_columns)
        for b in range(splits)
    ]


def run_sweep_trials(
    spec: SweepSpec, workers: Optional[int] = None
) -> np.ndarray:
    """Run the sweep; return success counts with shape (rings, curves).

    Work is sharded by whole ``K`` columns — each worker receives one
    ring size and runs all of its trials across all curves, so process
    and IPC overhead is amortized over ``trials * len(curves)`` point
    evaluations instead of one.  When there are fewer columns than
    workers (e.g. a single-``K`` sweep), columns split into contiguous
    trial blocks so the worker pool stays busy.  Deployment seeds are
    keyed by ``(ring_index, trial)``, so results are bit-identical for
    any worker count and any block layout.
    """
    from repro.simulation.engine import default_workers

    # Pin the kernel backend here, in the submitting process: ambient
    # resolution (active backend / env var) must not depend on how stale
    # a warm-pool worker's environment snapshot is.
    spec = dataclasses.replace(
        spec, kernel_backend=resolve_backend_name(spec.kernel_backend)
    )
    get_backend(spec.kernel_backend)  # unavailable backends fail fast here
    n_rings = len(spec.ring_sizes)
    effective = default_workers() if workers is None else max(1, int(workers))
    blocks = split_trial_blocks(n_rings, spec.trials, effective)
    counts = run_batches(
        functools.partial(_sweep_block, spec), blocks, workers
    )
    out = np.zeros((n_rings, len(spec.curves)), dtype=np.int64)
    for (ring_index, _, _), block_counts in zip(blocks, counts):
        out[ring_index] += block_counts
    return out


def sweep_connectivity_estimates(
    spec: SweepSpec, workers: Optional[int] = None
) -> Dict[Curve, Dict[int, BernoulliEstimate]]:
    """Sweep and wrap every point in a :class:`BernoulliEstimate`.

    Returns ``{(q, p): {K: estimate}}``.  Estimates in the same column
    (same ``K``, different curves) share deployments and are therefore
    positively correlated — a feature for curve comparisons (common
    random numbers), but callers aggregating *across* curves should
    remember the correlation.
    """
    successes = run_sweep_trials(spec, workers)
    out: Dict[Curve, Dict[int, BernoulliEstimate]] = {}
    for ci, curve in enumerate(spec.curves):
        per_ring: Dict[int, BernoulliEstimate] = {}
        for ri, ring in enumerate(spec.ring_sizes):
            per_ring[ring] = BernoulliEstimate.from_counts(
                int(successes[ri, ci]), spec.trials
            )
        out[curve] = per_ring
    return out
