"""Persistent (warm) worker pools.

``run_batches``/``run_trials`` used to fork a fresh
``ProcessPoolExecutor`` per sweep, so every experiment invocation paid
interpreter startup and module import for each worker.  This module
keeps one executor alive and hands it back on the next call,
amortizing that cost across every study, experiment, and benchmark in
the process.  The pool is sized to the largest worker count requested
so far (growing recreates it); calls requesting fewer workers reuse
the big pool but cap their in-flight submissions with a sliding
window, so concurrency never exceeds the request and the process
never accumulates one resident pool per distinct worker count.  The
pool is shut down at interpreter exit.

Determinism is unaffected: work units carry their own seeds, so *which*
pool (or how warm it is) never changes results.

Set ``REPRO_PERSISTENT_POOL=0`` to disable reuse and fall back to
ephemeral per-call pools (useful when embedding in frameworks that
manage process lifetimes themselves).
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Set

__all__ = ["persistent_pools_enabled", "get_executor", "shutdown_pools", "submit_batches"]

_EXECUTOR: Optional[ProcessPoolExecutor] = None
_EXECUTOR_SIZE = 0


def persistent_pools_enabled() -> bool:
    """Whether warm pool reuse is active (``REPRO_PERSISTENT_POOL`` != 0)."""
    return os.environ.get("REPRO_PERSISTENT_POOL", "1") != "0"


def get_executor(workers: int) -> ProcessPoolExecutor:
    """Return the warm executor, growing it if *workers* exceeds its size."""
    global _EXECUTOR, _EXECUTOR_SIZE
    if _EXECUTOR is None or _EXECUTOR_SIZE < workers:
        if _EXECUTOR is not None:
            _EXECUTOR.shutdown(wait=False, cancel_futures=True)
        _EXECUTOR = ProcessPoolExecutor(max_workers=workers)
        _EXECUTOR_SIZE = workers
    return _EXECUTOR


def _discard_executor() -> None:
    global _EXECUTOR, _EXECUTOR_SIZE
    if _EXECUTOR is not None:
        _EXECUTOR.shutdown(wait=False, cancel_futures=True)
        _EXECUTOR = None
        _EXECUTOR_SIZE = 0


def shutdown_pools() -> None:
    """Shut down the warm pool (registered via ``atexit``)."""
    _discard_executor()


atexit.register(shutdown_pools)


def _windowed(
    pool: ProcessPoolExecutor, fn: Callable, batches: Sequence, workers: int
) -> List:
    """Submit with at most *workers* futures in flight; results in order.

    The window waits with ``FIRST_COMPLETED``, so a slow batch never
    gates the submission of new work behind it (the old implementation
    blocked on the *oldest* pending future — head-of-line blocking that
    idled workers whenever early batches ran long).  Completion order
    is decoupled from result order: results are assigned by submission
    index, so the returned list is identical for any completion order.
    On failure, every not-yet-started future is cancelled before the
    error propagates — a raising batch must not leak queued work into
    the warm pool for the next caller to trip over.
    """
    results: List = [None] * len(batches)
    index_of: Dict[Future, int] = {}
    pending: Set[Future] = set()

    def collect(done: Set[Future]) -> None:
        for future in done:
            results[index_of.pop(future)] = future.result()

    try:
        for index, batch in enumerate(batches):
            future = pool.submit(fn, batch)
            index_of[future] = index
            pending.add(future)
            if len(pending) >= workers:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                collect(done)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            collect(done)
    except BaseException:
        for future in pending:
            future.cancel()
        raise
    return results


def submit_batches(fn: Callable, batches: Sequence, workers: int) -> List:
    """Run ``fn(batch)`` for every batch on *workers* processes, in order.

    Uses the warm pool when enabled, an ephemeral pool otherwise.  If
    the warm pool turns out to be broken (a worker died since last
    use), it is discarded and the whole batch list is retried once on a
    fresh pool — work units are idempotent by the engine's determinism
    contract, so the retry is safe.
    """
    if not persistent_pools_enabled():
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(fn, batch) for batch in batches]
            return [future.result() for future in futures]
    for attempt in (0, 1):
        pool = get_executor(workers)
        try:
            return _windowed(pool, fn, batches, workers)
        except BrokenProcessPool:
            _discard_executor()
            if attempt:
                raise
    raise AssertionError("unreachable")  # pragma: no cover
