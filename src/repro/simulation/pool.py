"""Persistent (warm) worker pools.

``run_batches``/``run_trials`` used to fork a fresh
``ProcessPoolExecutor`` per sweep, so every experiment invocation paid
interpreter startup and module import for each worker.  This module
keeps one executor alive and hands it back on the next call,
amortizing that cost across every study, experiment, and benchmark in
the process.  The pool is sized to the largest worker count requested
so far (growing recreates it); calls requesting fewer workers reuse
the big pool but cap their in-flight submissions with a sliding
window, so concurrency never exceeds the request and the process
never accumulates one resident pool per distinct worker count.  The
pool is shut down at interpreter exit.

Callers with work in flight hold a *lease* on their executor
(:func:`acquire_lease`/:func:`release_lease` or the
:func:`executor_lease` context manager).  Growing the pool while
leases are outstanding retires the old executor gracefully — it stops
accepting new work but finishes what leaseholders already submitted —
instead of cancelling their futures out from under them.

Determinism is unaffected: work units carry their own seeds, so *which*
pool (or how warm it is) never changes results.

Set ``REPRO_PERSISTENT_POOL=0`` to disable reuse and fall back to
ephemeral per-call pools (useful when embedding in frameworks that
manage process lifetimes themselves).
"""

from __future__ import annotations

import atexit
import contextlib
import os
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set

__all__ = [
    "persistent_pools_enabled",
    "get_executor",
    "discard_executor",
    "shutdown_pools",
    "submit_batches",
    "acquire_lease",
    "release_lease",
    "executor_lease",
    "active_leases",
]

_EXECUTOR: Optional[ProcessPoolExecutor] = None
_EXECUTOR_SIZE = 0
_LEASES: Dict[int, int] = {}  # id(executor) -> outstanding lease count


def persistent_pools_enabled() -> bool:
    """Whether warm pool reuse is active (``REPRO_PERSISTENT_POOL`` != 0)."""
    return os.environ.get("REPRO_PERSISTENT_POOL", "1") != "0"


def acquire_lease(executor: ProcessPoolExecutor) -> None:
    """Mark *executor* as having caller work in flight.

    While any lease is outstanding, :func:`get_executor` growth retires
    the executor without cancelling its futures.
    """
    _LEASES[id(executor)] = _LEASES.get(id(executor), 0) + 1


def release_lease(executor: ProcessPoolExecutor) -> None:
    """Release one lease taken by :func:`acquire_lease`."""
    key = id(executor)
    count = _LEASES.get(key, 0)
    if count <= 1:
        _LEASES.pop(key, None)
    else:
        _LEASES[key] = count - 1


def active_leases(executor: ProcessPoolExecutor) -> int:
    """Outstanding lease count for *executor* (0 when unleased)."""
    return _LEASES.get(id(executor), 0)


@contextlib.contextmanager
def executor_lease(executor: ProcessPoolExecutor) -> Iterator[ProcessPoolExecutor]:
    """Hold a lease on *executor* for the duration of the block."""
    acquire_lease(executor)
    try:
        yield executor
    finally:
        release_lease(executor)


def get_executor(workers: int) -> ProcessPoolExecutor:
    """Return the warm executor, growing it if *workers* exceeds its size.

    Growth normally cancels the old executor's queue outright, but when
    a caller holds a lease (work legitimately in flight) the old
    executor is *retired* instead: no new submissions land on it, its
    running and queued futures complete normally, and its processes
    exit once the last one drains.
    """
    global _EXECUTOR, _EXECUTOR_SIZE
    if _EXECUTOR is None or _EXECUTOR_SIZE < workers:
        if _EXECUTOR is not None:
            if active_leases(_EXECUTOR):
                _EXECUTOR.shutdown(wait=False)
            else:
                _EXECUTOR.shutdown(wait=False, cancel_futures=True)
        _EXECUTOR = ProcessPoolExecutor(max_workers=workers)
        _EXECUTOR_SIZE = workers
    return _EXECUTOR


def discard_executor() -> None:
    """Drop the warm executor (e.g. after ``BrokenProcessPool``).

    The next :func:`get_executor` call builds a fresh one.
    """
    global _EXECUTOR, _EXECUTOR_SIZE
    if _EXECUTOR is not None:
        _EXECUTOR.shutdown(wait=False, cancel_futures=True)
        _LEASES.pop(id(_EXECUTOR), None)
        _EXECUTOR = None
        _EXECUTOR_SIZE = 0


def shutdown_pools() -> None:
    """Shut down the warm pool (registered via ``atexit``)."""
    discard_executor()


atexit.register(shutdown_pools)


def _windowed(
    pool: ProcessPoolExecutor, fn: Callable, batches: Sequence, workers: int
) -> List:
    """Submit with at most *workers* futures in flight; results in order.

    The window waits with ``FIRST_COMPLETED``, so a slow batch never
    gates the submission of new work behind it (the old implementation
    blocked on the *oldest* pending future — head-of-line blocking that
    idled workers whenever early batches ran long).  Completion order
    is decoupled from result order: results are assigned by submission
    index, so the returned list is identical for any completion order.
    On failure, every not-yet-started future is cancelled before the
    error propagates — a raising batch must not leak queued work into
    the warm pool for the next caller to trip over.
    """
    results: List = [None] * len(batches)
    index_of: Dict[Future, int] = {}
    pending: Set[Future] = set()

    def collect(done: Set[Future]) -> None:
        for future in done:
            results[index_of.pop(future)] = future.result()

    try:
        for index, batch in enumerate(batches):
            future = pool.submit(fn, batch)
            index_of[future] = index
            pending.add(future)
            if len(pending) >= workers:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                collect(done)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            collect(done)
    except BaseException:
        for future in pending:
            future.cancel()
        raise
    return results


def submit_batches(fn: Callable, batches: Sequence, workers: int) -> List:
    """Run ``fn(batch)`` for every batch on *workers* processes, in order.

    Uses the warm pool when enabled, an ephemeral pool otherwise; both
    paths share :func:`_windowed`, so window capping and
    cancel-on-failure behave identically regardless of
    ``REPRO_PERSISTENT_POOL``.  If the warm pool turns out to be broken
    (a worker died since last use), it is discarded and the whole batch
    list is retried once on a fresh pool — work units are idempotent by
    the engine's determinism contract, so the retry is safe.
    """
    if not persistent_pools_enabled():
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return _windowed(pool, fn, batches, workers)
    for attempt in (0, 1):
        pool = get_executor(workers)
        try:
            with executor_lease(pool):
                return _windowed(pool, fn, batches, workers)
        except BrokenProcessPool:
            discard_executor()
            if attempt:
                raise
    raise AssertionError("unreachable")  # pragma: no cover
