"""Trial protocols: one random deployment → one measured outcome.

These are the picklable building blocks the engine fans out.  They work
on raw edge arrays (no :class:`SecureWSN` object construction) because
Figure 1 alone needs ~180k deployments at paper fidelity.

Every protocol samples the model *exactly* as Section II defines it:

1. uniform ``K``-subset rings for all ``n`` nodes,
2. key-graph candidate edges where rings share ``>= q`` keys,
3. an independent Bernoulli(``p``) channel decision per candidate edge
   (exactly equivalent to intersecting with a full ``G(n, p)`` — only
   candidate edges can survive the intersection).
"""

from __future__ import annotations

import numpy as np

from repro.channels.onoff import sample_onoff_mask
from repro.graphs.properties import degrees_from_edges
from repro.graphs.unionfind import is_connected_edges
from repro.graphs.vertex_connectivity import is_k_connected_edges
from repro.keygraphs.rings import (
    sample_class_labels,
    sample_class_rings,
    sample_uniform_rings,
)
from repro.keygraphs.uniform_graph import edges_from_rings, overlap_counts_from_rings
from repro.params import QCompositeParams

__all__ = [
    "sample_secure_edges",
    "sample_het_secure_edges",
    "connectivity_trial",
    "k_connectivity_trial",
    "min_degree_trial",
    "degree_count_trial",
    "min_degree_vs_kconn_trial",
    "isolated_count_trial",
    "het_connectivity_trial",
    "het_min_degree_vs_kconn_trial",
]


def sample_secure_edges(
    params: QCompositeParams, rng: np.random.Generator
) -> np.ndarray:
    """Sample one topology of ``G_{n,q}(n, K, P, p)``; return its edges."""
    rings = sample_uniform_rings(
        params.num_nodes, params.key_ring_size, params.pool_size, rng
    )
    key_edges = edges_from_rings(rings, params.overlap)
    if params.channel_prob >= 1.0:
        return key_edges
    mask = sample_onoff_mask(key_edges.shape[0], params.channel_prob, rng)
    return key_edges[mask]


def connectivity_trial(params: QCompositeParams, rng: np.random.Generator) -> bool:
    """One deployment → is it connected? (the Figure 1 trial)."""
    edges = sample_secure_edges(params, rng)
    return is_connected_edges(params.num_nodes, edges)


def k_connectivity_trial(
    params: QCompositeParams, k: int, rng: np.random.Generator
) -> bool:
    """One deployment → is it k-connected? (exact decision).

    The decision kernel short-circuits through the min-degree
    necessary condition itself before any flow network is built, which
    keeps the expensive path rare near the threshold.
    """
    edges = sample_secure_edges(params, rng)
    if k == 1:
        return is_connected_edges(params.num_nodes, edges)
    return is_k_connected_edges(params.num_nodes, edges, k)


def min_degree_trial(
    params: QCompositeParams, k: int, rng: np.random.Generator
) -> bool:
    """One deployment → is the minimum degree at least k? (Lemma 8)."""
    edges = sample_secure_edges(params, rng)
    return int(degrees_from_edges(params.num_nodes, edges).min()) >= k


def degree_count_trial(
    params: QCompositeParams, h: int, rng: np.random.Generator
) -> int:
    """One deployment → number of nodes with degree exactly h (Lemma 9)."""
    edges = sample_secure_edges(params, rng)
    degs = degrees_from_edges(params.num_nodes, edges)
    return int((degs == h).sum())


def isolated_count_trial(params: QCompositeParams, rng: np.random.Generator) -> int:
    """One deployment → number of isolated nodes (h = 0 special case)."""
    return degree_count_trial(params, 0, rng)


def min_degree_vs_kconn_trial(
    params: QCompositeParams, k: int, rng: np.random.Generator
) -> "tuple[bool, bool]":
    """One deployment → (min degree >= k, k-connected) on the *same* sample.

    Measuring both properties on one topology exposes how rarely they
    disagree — the finite-``n`` face of the Lemma 8 / Theorem 1
    equivalence.
    """
    edges = sample_secure_edges(params, rng)
    deg_ok = int(degrees_from_edges(params.num_nodes, edges).min()) >= k
    if not deg_ok:
        return (False, False)  # min degree < k forbids k-connectivity
    if k == 1:
        return (True, is_connected_edges(params.num_nodes, edges))
    return (True, is_k_connected_edges(params.num_nodes, edges, k))


def sample_het_secure_edges(
    num_nodes: int,
    pool_size: int,
    ring_sizes,
    mu,
    channel_probs,
    q: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample one heterogeneous (class-mix) topology; return its edges.

    The Eletreby–Yağan model, sampled exactly: per-node classes from
    ``mu``, per-class ring sizes, candidate edges at ``>= q`` shared
    keys, then one Bernoulli per candidate at the class-pair probability
    ``channel_probs[c(u)][c(v)]``.  This is the independent per-point
    sampler backing the ``backend="legacy"`` cross-checks of the
    heterogeneous experiments — deliberately decoupled from the study
    compiler's shared-deployment stream.
    """
    labels = sample_class_labels(num_nodes, mu, rng)
    rings = sample_class_rings(labels, ring_sizes, pool_size, rng)
    pair_keys, counts = overlap_counts_from_rings(rings)
    candidates = pair_keys[counts >= q]
    u = candidates // num_nodes
    v = candidates % num_nodes
    matrix = np.asarray(channel_probs, dtype=np.float64)
    keep = rng.random(candidates.size) < matrix[labels[u], labels[v]]
    out = np.empty((int(keep.sum()), 2), dtype=np.int64)
    out[:, 0] = u[keep]
    out[:, 1] = v[keep]
    return out


def het_connectivity_trial(
    num_nodes: int,
    pool_size: int,
    ring_sizes,
    mu,
    channel_probs,
    q: int,
    rng: np.random.Generator,
) -> bool:
    """One heterogeneous deployment → is it connected?"""
    edges = sample_het_secure_edges(
        num_nodes, pool_size, ring_sizes, mu, channel_probs, q, rng
    )
    return is_connected_edges(num_nodes, edges)


def het_min_degree_vs_kconn_trial(
    num_nodes: int,
    pool_size: int,
    ring_sizes,
    mu,
    channel_probs,
    q: int,
    k: int,
    rng: np.random.Generator,
) -> "tuple[bool, bool]":
    """One heterogeneous deployment → (min degree >= k, k-connected)."""
    edges = sample_het_secure_edges(
        num_nodes, pool_size, ring_sizes, mu, channel_probs, q, rng
    )
    deg_ok = int(degrees_from_edges(num_nodes, edges).min()) >= k
    if not deg_ok:
        return (False, False)  # min degree < k forbids k-connectivity
    if k == 1:
        return (True, is_connected_edges(num_nodes, edges))
    return (True, is_k_connected_edges(num_nodes, edges, k))
