"""Estimators for Monte Carlo trial outcomes."""

from __future__ import annotations

import dataclasses
import math
from typing import Dict

from repro.exceptions import SimulationError

__all__ = ["BernoulliEstimate", "wilson_interval", "wilson_half_width"]


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> "tuple[float, float]":
    """Wilson score interval for a binomial proportion.

    Preferred over the normal (Wald) interval because Figure 1's curves
    live at probabilities near 0 and 1, exactly where Wald collapses.
    """
    if trials <= 0:
        raise SimulationError("trials must be positive")
    if not 0 <= successes <= trials:
        raise SimulationError(
            f"successes={successes} outside [0, trials={trials}]"
        )
    if z <= 0:
        raise SimulationError("z must be positive")
    phat = successes / trials
    denom = 1.0 + z * z / trials
    center = (phat + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(phat * (1 - phat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    low = max(0.0, center - half)
    high = min(1.0, center + half)
    # Pin the degenerate endpoints exactly: rounding in center ± half can
    # otherwise leave the observed proportion marginally outside.
    if successes == 0:
        low = 0.0
    if successes == trials:
        high = 1.0
    return (low, high)


def wilson_half_width(successes: int, trials: int, z: float = 1.96) -> float:
    """Half the Wilson interval width — the adaptive stopping statistic.

    This is the resolution of the estimate: an adaptive driver extends
    a cell until its half-width drops below the CI target.  Defined as
    ``(high - low) / 2`` of the (endpoint-pinned) Wilson interval, so
    the degenerate all-0/all-1 cells that dominate the zero-one tails
    shrink like ``z^2 / (2 (n + z^2))`` instead of collapsing to zero
    the way a Wald interval would.
    """
    low, high = wilson_interval(successes, trials, z)
    return (high - low) / 2.0


@dataclasses.dataclass(frozen=True)
class BernoulliEstimate:
    """Empirical probability with a Wilson confidence interval."""

    successes: int
    trials: int
    estimate: float
    ci_low: float
    ci_high: float

    @classmethod
    def from_counts(
        cls, successes: int, trials: int, z: float = 1.96
    ) -> "BernoulliEstimate":
        low, high = wilson_interval(successes, trials, z)
        return cls(
            successes=int(successes),
            trials=int(trials),
            estimate=successes / trials,
            ci_low=low,
            ci_high=high,
        )

    def stderr(self) -> float:
        """Plain binomial standard error of the point estimate."""
        p = self.estimate
        return math.sqrt(max(p * (1 - p), 0.0) / self.trials)

    @property
    def half_width(self) -> float:
        """Half the confidence-interval width, ``(ci_high - ci_low) / 2``."""
        return (self.ci_high - self.ci_low) / 2.0

    def contains(self, prob: float) -> bool:
        """Whether *prob* lies inside the confidence interval."""
        return self.ci_low <= prob <= self.ci_high

    def to_dict(self) -> Dict[str, float]:
        return dataclasses.asdict(self)
