"""High-level estimation runners: trials → estimates.

Thin, picklable glue between the trial protocols and the engine.
Since the Scenario/Study redesign these back the experiments'
``backend="legacy"`` cross-check paths (one independent deployment per
parameter point); the default execution route is the shared-deployment
study compiler in :mod:`repro.study`.
"""

from __future__ import annotations

import functools
from typing import List, Optional, Tuple

import numpy as np

from repro.params import QCompositeParams
from repro.simulation.engine import run_trials
from repro.simulation.estimators import BernoulliEstimate
from repro.simulation.trials import (
    connectivity_trial,
    degree_count_trial,
    het_connectivity_trial,
    het_min_degree_vs_kconn_trial,
    k_connectivity_trial,
    min_degree_trial,
    min_degree_vs_kconn_trial,
)

__all__ = [
    "estimate_connectivity",
    "estimate_k_connectivity",
    "estimate_min_degree",
    "sample_degree_counts",
    "estimate_agreement",
    "estimate_het_connectivity",
    "estimate_het_agreement",
]


def estimate_connectivity(
    params: QCompositeParams,
    trials: int,
    seed: Optional[int] = None,
    workers: Optional[int] = None,
) -> BernoulliEstimate:
    """Empirical ``P[G_{n,q} connected]`` over *trials* deployments."""
    outcomes = run_trials(
        functools.partial(connectivity_trial, params), trials, seed, workers
    )
    return BernoulliEstimate.from_counts(sum(outcomes), trials)


def estimate_k_connectivity(
    params: QCompositeParams,
    k: int,
    trials: int,
    seed: Optional[int] = None,
    workers: Optional[int] = None,
) -> BernoulliEstimate:
    """Empirical ``P[G_{n,q} k-connected]`` (exact per-trial decision)."""
    if k == 1:
        return estimate_connectivity(params, trials, seed, workers)
    outcomes = run_trials(
        functools.partial(k_connectivity_trial, params, k), trials, seed, workers
    )
    return BernoulliEstimate.from_counts(sum(outcomes), trials)


def estimate_min_degree(
    params: QCompositeParams,
    k: int,
    trials: int,
    seed: Optional[int] = None,
    workers: Optional[int] = None,
) -> BernoulliEstimate:
    """Empirical ``P[min degree >= k]`` (Lemma 8's statistic)."""
    outcomes = run_trials(
        functools.partial(min_degree_trial, params, k), trials, seed, workers
    )
    return BernoulliEstimate.from_counts(sum(outcomes), trials)


def sample_degree_counts(
    params: QCompositeParams,
    h: int,
    trials: int,
    seed: Optional[int] = None,
    workers: Optional[int] = None,
) -> np.ndarray:
    """Per-trial counts of degree-``h`` nodes (Lemma 9's statistic)."""
    outcomes = run_trials(
        functools.partial(degree_count_trial, params, h), trials, seed, workers
    )
    return np.array(outcomes, dtype=np.int64)


def estimate_agreement(
    params: QCompositeParams,
    k: int,
    trials: int,
    seed: Optional[int] = None,
    workers: Optional[int] = None,
) -> Tuple[BernoulliEstimate, BernoulliEstimate, float]:
    """Joint min-degree / k-connectivity estimates plus agreement rate.

    Returns ``(min_degree_estimate, k_connectivity_estimate,
    agreement)`` where *agreement* is the fraction of deployments in
    which the two indicator outcomes coincide.
    """
    outcomes: List[Tuple[bool, bool]] = run_trials(
        functools.partial(min_degree_vs_kconn_trial, params, k),
        trials,
        seed,
        workers,
    )
    deg_hits = sum(1 for deg_ok, _ in outcomes if deg_ok)
    conn_hits = sum(1 for _, conn_ok in outcomes if conn_ok)
    agree = sum(1 for deg_ok, conn_ok in outcomes if deg_ok == conn_ok)
    return (
        BernoulliEstimate.from_counts(deg_hits, trials),
        BernoulliEstimate.from_counts(conn_hits, trials),
        agree / trials,
    )


def estimate_het_connectivity(
    num_nodes: int,
    pool_size: int,
    ring_sizes: Tuple[int, ...],
    mu: Tuple[float, ...],
    channel_probs: Tuple[Tuple[float, ...], ...],
    q: int,
    trials: int,
    seed: Optional[int] = None,
    workers: Optional[int] = None,
) -> BernoulliEstimate:
    """Empirical P[connected] of the heterogeneous class-mix model.

    Independent per-point sampling (one fresh deployment per trial) —
    the ``backend="legacy"`` cross-check for the study-compiled
    heterogeneous experiments.
    """
    outcomes = run_trials(
        functools.partial(
            het_connectivity_trial,
            num_nodes,
            pool_size,
            ring_sizes,
            mu,
            channel_probs,
            q,
        ),
        trials,
        seed,
        workers,
    )
    return BernoulliEstimate.from_counts(sum(outcomes), trials)


def estimate_het_agreement(
    num_nodes: int,
    pool_size: int,
    ring_sizes: Tuple[int, ...],
    mu: Tuple[float, ...],
    channel_probs: Tuple[Tuple[float, ...], ...],
    q: int,
    k: int,
    trials: int,
    seed: Optional[int] = None,
    workers: Optional[int] = None,
) -> Tuple[BernoulliEstimate, BernoulliEstimate, float]:
    """Joint heterogeneous min-degree / k-connectivity estimates.

    Returns ``(min_degree_estimate, k_connectivity_estimate,
    agreement)`` exactly like :func:`estimate_agreement`, on the
    class-mix model.
    """
    outcomes: List[Tuple[bool, bool]] = run_trials(
        functools.partial(
            het_min_degree_vs_kconn_trial,
            num_nodes,
            pool_size,
            ring_sizes,
            mu,
            channel_probs,
            q,
            k,
        ),
        trials,
        seed,
        workers,
    )
    deg_hits = sum(1 for deg_ok, _ in outcomes if deg_ok)
    conn_hits = sum(1 for _, conn_ok in outcomes if conn_ok)
    agree = sum(1 for deg_ok, conn_ok in outcomes if deg_ok == conn_ok)
    return (
        BernoulliEstimate.from_counts(deg_hits, trials),
        BernoulliEstimate.from_counts(conn_hits, trials),
        agree / trials,
    )
