"""Monte Carlo simulation: engine, trial protocols, runners, results.

Performance notes
-----------------
The Monte Carlo stack has two execution paths:

* the **legacy per-point path** (:mod:`repro.simulation.trials` +
  :func:`run_trials`): one deployment per ``(q, p, K)`` point, kept as
  an independent cross-check backend;
* the **shared-deployment sweep engine** (:mod:`repro.simulation.sweep`):
  one deployment per ``(K, trial)`` serving *all* ``(q, p)`` curves.
  Rings are sampled once, key-overlap counts are computed once, and all
  channel probabilities are realized from a single uniform draw per
  candidate edge by nested thinning (``U < p``).  Marginally each curve
  sees exactly the model of Section II; jointly the curves are coupled
  monotonically (smaller ``p`` / larger ``q`` edge sets are subsets of
  larger ``p`` / smaller ``q`` ones within a deployment).

The coupling is deliberate common-random-numbers design: differences
and orderings *between* curves (e.g. threshold locations in Figure 1)
are estimated with much lower variance, and the dominant sampling cost
is paid once instead of once per curve.  The flip side: estimates at
the same ``(K, trial)`` are positively correlated **across curves**, so
they must not be treated as independent when aggregating over curves.
Across trials and across ring sizes everything remains independent.

Connectivity decisions on the sweep path run on the vectorized
min-label kernel (:func:`repro.graphs.unionfind.is_connected_pair_keys`)
directly over int64 pair keys — no per-edge Python loop and no Graph
construction.  Work is sharded by whole ``K`` columns
(:func:`repro.simulation.engine.run_batches`), splitting columns into
contiguous trial blocks when columns are scarce
(:func:`repro.simulation.sweep.split_trial_blocks`), so process/IPC
overhead is amortized over ``trials * len(curves)`` point evaluations
and a single-``K`` sweep still saturates the pool.  Pools are *warm*:
:mod:`repro.simulation.pool` keeps executors alive across calls, so
repeated experiment invocations stop paying worker startup
(``REPRO_PERSISTENT_POOL=0`` disables reuse).

The declarative layer over this stack — frozen JSON-round-trippable
scenarios compiled onto shared deployments with arbitrary metric sets —
lives in :mod:`repro.study`.
"""

from repro.simulation.engine import (
    default_workers,
    run_batches,
    run_trials,
    trials_from_env,
)
from repro.simulation.pool import (
    discard_executor,
    executor_lease,
    get_executor,
    persistent_pools_enabled,
    shutdown_pools,
    submit_batches,
)
from repro.simulation.faults import (
    ChaosSpec,
    FailureInjector,
    FaultStrategy,
    chaos_from_env,
    load_chaos,
)
from repro.simulation.scheduler import (
    FaultReport,
    SchedulerPolicy,
    combine_fault_reports,
    resolve_scheduler_policy,
    run_units,
)
from repro.simulation.estimators import BernoulliEstimate, wilson_interval
from repro.simulation.results import (
    CurvePoint,
    ExperimentResult,
    load_result,
    save_result,
)
from repro.simulation.runners import (
    estimate_agreement,
    estimate_connectivity,
    estimate_k_connectivity,
    estimate_min_degree,
    sample_degree_counts,
)
from repro.simulation.sweep import (
    SweepSpec,
    run_sweep_trials,
    split_trial_blocks,
    sweep_connectivity_estimates,
    sweep_curve_masks,
    sweep_deployment_outcomes,
)
from repro.simulation.trials import (
    connectivity_trial,
    degree_count_trial,
    isolated_count_trial,
    k_connectivity_trial,
    min_degree_trial,
    min_degree_vs_kconn_trial,
    sample_secure_edges,
)

__all__ = [
    "default_workers",
    "run_trials",
    "run_batches",
    "trials_from_env",
    "get_executor",
    "discard_executor",
    "executor_lease",
    "persistent_pools_enabled",
    "shutdown_pools",
    "submit_batches",
    "ChaosSpec",
    "FaultStrategy",
    "FailureInjector",
    "chaos_from_env",
    "load_chaos",
    "FaultReport",
    "SchedulerPolicy",
    "combine_fault_reports",
    "resolve_scheduler_policy",
    "run_units",
    "split_trial_blocks",
    "BernoulliEstimate",
    "wilson_interval",
    "CurvePoint",
    "ExperimentResult",
    "load_result",
    "save_result",
    "estimate_agreement",
    "estimate_connectivity",
    "estimate_k_connectivity",
    "estimate_min_degree",
    "sample_degree_counts",
    "SweepSpec",
    "run_sweep_trials",
    "sweep_connectivity_estimates",
    "sweep_curve_masks",
    "sweep_deployment_outcomes",
    "connectivity_trial",
    "degree_count_trial",
    "isolated_count_trial",
    "k_connectivity_trial",
    "min_degree_trial",
    "min_degree_vs_kconn_trial",
    "sample_secure_edges",
]
