"""Monte Carlo simulation: engine, trial protocols, runners, results."""

from repro.simulation.engine import default_workers, run_trials, trials_from_env
from repro.simulation.estimators import BernoulliEstimate, wilson_interval
from repro.simulation.results import (
    CurvePoint,
    ExperimentResult,
    load_result,
    save_result,
)
from repro.simulation.runners import (
    estimate_agreement,
    estimate_connectivity,
    estimate_k_connectivity,
    estimate_min_degree,
    sample_degree_counts,
)
from repro.simulation.trials import (
    connectivity_trial,
    degree_count_trial,
    isolated_count_trial,
    k_connectivity_trial,
    min_degree_trial,
    min_degree_vs_kconn_trial,
    sample_secure_edges,
)

__all__ = [
    "default_workers",
    "run_trials",
    "trials_from_env",
    "BernoulliEstimate",
    "wilson_interval",
    "CurvePoint",
    "ExperimentResult",
    "load_result",
    "save_result",
    "estimate_agreement",
    "estimate_connectivity",
    "estimate_k_connectivity",
    "estimate_min_degree",
    "sample_degree_counts",
    "connectivity_trial",
    "degree_count_trial",
    "isolated_count_trial",
    "k_connectivity_trial",
    "min_degree_trial",
    "min_degree_vs_kconn_trial",
    "sample_secure_edges",
]
