"""Monte Carlo execution engine.

One discipline everywhere: a trial is a picklable callable
``trial(rng) -> outcome`` and trial *i* of a run rooted at seed ``s``
always receives the generator derived from
``SeedSequence(s, spawn_key=(i,))`` — regardless of worker count or
scheduling.  Serial and process-parallel execution therefore produce
bit-identical outcome sequences, which the test suite asserts.
"""

from __future__ import annotations

import functools
import os
from typing import Callable, List, Optional, Sequence, TypeVar

import numpy as np

from repro.exceptions import SimulationError
from repro.simulation.pool import submit_batches
from repro.utils.rng import trial_seed_sequence

__all__ = ["run_trials", "run_batches", "default_workers", "trials_from_env"]

T = TypeVar("T")
TrialFn = Callable[[np.random.Generator], T]


def default_workers() -> int:
    """Worker count: ``REPRO_WORKERS`` env var, else ``min(cpu, 8)``.

    Eight processes saturate the Figure 1 workload on typical hosts
    while keeping fork/IPC overhead negligible for smaller runs.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env:
        value = int(env)
        if value < 1:
            raise SimulationError(f"REPRO_WORKERS must be >= 1, got {value}")
        return value
    return max(1, min(os.cpu_count() or 1, 8))


def trials_from_env(default: int, *, full: Optional[int] = None) -> int:
    """Trial count for benchmarks: env-overridable quick defaults.

    ``REPRO_TRIALS`` overrides everything; ``REPRO_FULL=1`` selects the
    paper-fidelity count *full* (e.g. 500 for Figure 1) when provided.
    """
    env = os.environ.get("REPRO_TRIALS")
    if env:
        value = int(env)
        if value < 1:
            raise SimulationError(f"REPRO_TRIALS must be >= 1, got {value}")
        return value
    if full is not None and os.environ.get("REPRO_FULL") == "1":
        return full
    return default


def _run_indices(trial: TrialFn, root: Optional[int], indices: Sequence[int]) -> List:
    out = []
    for index in indices:
        rng = np.random.default_rng(trial_seed_sequence(root, index))
        out.append(trial(rng))
    return out


def run_trials(
    trial: TrialFn,
    num_trials: int,
    seed: Optional[int] = None,
    workers: Optional[int] = None,
) -> List[T]:
    """Run *num_trials* independent trials; return outcomes in trial order.

    Parameters
    ----------
    trial:
        Picklable callable receiving a dedicated ``numpy`` generator.
        (Module-level functions and ``functools.partial`` over picklable
        arguments qualify; lambdas only work with ``workers=1``.)
    num_trials:
        Number of independent repetitions.
    seed:
        Root seed; ``None`` fixes the root entropy to 0 so that runs
        remain reproducible by default (pass a varying seed explicitly
        for independent replications).
    workers:
        Process count; ``1`` runs inline (no pool), ``None`` uses
        :func:`default_workers`.
    """
    if num_trials < 1:
        raise SimulationError(f"num_trials must be >= 1, got {num_trials}")
    workers = default_workers() if workers is None else int(workers)
    if workers < 1:
        raise SimulationError(f"workers must be >= 1, got {workers}")
    workers = min(workers, num_trials)

    if workers == 1:
        return _run_indices(trial, seed, range(num_trials))

    # Interleaved index blocks keep chunk runtimes balanced even when
    # difficulty drifts with the trial index.
    chunks = [list(range(w, num_trials, workers)) for w in range(workers)]
    results: List = [None] * num_trials
    outcomes = submit_batches(
        functools.partial(_run_indices, trial, seed), chunks, workers
    )
    for chunk, chunk_outcomes in zip(chunks, outcomes):
        for index, outcome in zip(chunk, chunk_outcomes):
            results[index] = outcome
    return results


def run_batches(
    fn: Callable[[T], object],
    batches: Sequence[T],
    workers: Optional[int] = None,
) -> List:
    """Run ``fn(batch)`` for every work unit; return results in order.

    The coarse-grained sibling of :func:`run_trials`: each batch is a
    self-contained column of work (e.g. all trials of one ring size in
    the sweep engine), so process fan-out and IPC are amortized over
    the whole column instead of paid per trial.  *fn* must be picklable
    for ``workers > 1``; batches carry their own deterministic seeds, so
    results do not depend on worker count.
    """
    batches = list(batches)
    if not batches:
        return []
    workers = default_workers() if workers is None else int(workers)
    if workers < 1:
        raise SimulationError(f"workers must be >= 1, got {workers}")
    workers = min(workers, len(batches))
    if workers == 1:
        return [fn(batch) for batch in batches]
    return submit_batches(fn, batches, workers)
