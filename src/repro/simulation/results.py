"""Result containers with JSON round-tripping.

Experiments emit :class:`CurvePoint` rows (one per parameter point) that
bundle the empirical estimate with the theory prediction evaluated at
the same point, so EXPERIMENTS.md tables can be regenerated from saved
JSON without re-simulating.

These are the *interpreted* per-experiment tables.  The raw per-trial
value tensors produced by the declarative layer live in
:class:`repro.study.StudyResult` (saved by ``repro study --save``);
an :class:`ExperimentResult` is what a registry experiment's
``from_study`` interpretation distills out of one.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, List, Optional, Union

from repro.simulation.estimators import BernoulliEstimate

__all__ = ["CurvePoint", "ExperimentResult", "save_result", "load_result"]


@dataclasses.dataclass(frozen=True)
class CurvePoint:
    """One sweep point: varied parameters, estimate, and prediction."""

    point: Dict[str, float]
    estimate: BernoulliEstimate
    prediction: Optional[float] = None

    def gap(self) -> Optional[float]:
        """Signed empirical-minus-predicted gap, if a prediction exists."""
        if self.prediction is None:
            return None
        return self.estimate.estimate - self.prediction

    def to_dict(self) -> Dict[str, object]:
        return {
            "point": dict(self.point),
            "estimate": self.estimate.to_dict(),
            "prediction": self.prediction,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CurvePoint":
        est = data["estimate"]
        return cls(
            point=dict(data["point"]),  # type: ignore[arg-type]
            estimate=BernoulliEstimate(**est),  # type: ignore[arg-type]
            prediction=data.get("prediction"),  # type: ignore[arg-type]
        )


@dataclasses.dataclass(frozen=True)
class ExperimentResult:
    """A named experiment run: configuration + all sweep points."""

    name: str
    config: Dict[str, object]
    points: List[CurvePoint]

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "config": dict(self.config),
            "points": [p.to_dict() for p in self.points],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentResult":
        return cls(
            name=str(data["name"]),
            config=dict(data["config"]),  # type: ignore[arg-type]
            points=[CurvePoint.from_dict(p) for p in data["points"]],  # type: ignore[union-attr]
        )

    def max_abs_gap(self) -> float:
        """Largest |empirical - predicted| over points with predictions."""
        gaps = [abs(p.gap()) for p in self.points if p.gap() is not None]
        return max(gaps) if gaps else float("nan")


PathLike = Union[str, pathlib.Path]


def save_result(result: ExperimentResult, path: PathLike) -> None:
    """Write an experiment result as pretty-printed JSON."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result.to_dict(), indent=2, sort_keys=True))


def load_result(path: PathLike) -> ExperimentResult:
    """Read an experiment result saved by :func:`save_result`."""
    data = json.loads(pathlib.Path(path).read_text())
    return ExperimentResult.from_dict(data)
