"""Deterministic chaos injection for work-unit execution.

A multi-host study service must survive worker loss, stragglers,
timeouts, and duplicate shards — and CI must *prove* that it still
converges to the one-shot answer.  This module supplies the controlled
adversary: a :class:`FailureInjector` middleware that wraps work-unit
execution with composable failure strategies, each fired by a
*deterministically seeded* per-``(unit, attempt)`` coin flip, so a
chaos run is exactly reproducible from its :class:`ChaosSpec` alone.

Strategies
----------
``crash``
    Raise :class:`~repro.exceptions.InjectedFailure` in the worker
    before the unit executes (a died-mid-unit worker, an OOM kill).
``delay``
    Sleep ``delay`` seconds before executing (a straggler); exercises
    the scheduler's speculative re-execution and per-unit timeout.
``drop``
    Execute the unit but never return its result (a lost response);
    the supervisor sees a dropped envelope and must retry.
``partial``
    Return a corrupted payload whose integrity checksum no longer
    matches (a truncated or bit-flipped shard); the supervisor must
    detect the mismatch and retry rather than fold bad values in.
``broken_pool``
    Kill the worker process outright (``os._exit``), breaking the
    entire executor; the supervisor must rebuild the pool and
    resubmit every in-flight unit.

Every decision derives from ``SeedSequence(chaos_seed,
spawn_key=(strategy_index, unit_index, attempt))``: independent of
worker count, scheduling order, and wall clock.  Because retried
attempts carry fresh attempt indices, a faulted unit is not condemned
to fault forever — and the optional per-strategy ``max_attempt`` cap
("inject only on the first N attempts") lets the chaos convergence
tests *guarantee* recovery within the retry budget, deterministically.

Specs JSON-round-trip and thread through ``repro study --chaos
FILE_OR_SPEC`` and the ``REPRO_CHAOS`` environment variable (a path or
inline JSON).
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import time
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import InjectedFailure, ParameterError
from repro.utils.rng import grid_seed_sequence

__all__ = [
    "STRATEGY_KINDS",
    "FaultStrategy",
    "ChaosSpec",
    "Injection",
    "FailureInjector",
    "corrupt_payload",
    "load_chaos",
    "chaos_from_env",
    "CHAOS_ENV_VAR",
]

CHAOS_ENV_VAR = "REPRO_CHAOS"

#: The composable failure strategies, in documentation order.
STRATEGY_KINDS: Tuple[str, ...] = (
    "crash",
    "delay",
    "drop",
    "partial",
    "broken_pool",
)


@dataclasses.dataclass(frozen=True)
class FaultStrategy:
    """One failure mode with its per-``(unit, attempt)`` firing rule.

    Attributes
    ----------
    kind:
        One of :data:`STRATEGY_KINDS`.
    probability:
        Per-execution firing probability in ``[0, 1]``; the coin flip
        is seeded by ``(chaos seed, strategy index, unit, attempt)``.
    delay:
        Sleep duration in seconds (``delay`` strategy only).
    max_attempt:
        If set, the strategy only fires while ``attempt <
        max_attempt`` — retries beyond that bound run clean, which
        makes convergence under a bounded retry budget provable
        instead of merely probable.
    """

    kind: str
    probability: float
    delay: float = 0.25
    max_attempt: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in STRATEGY_KINDS:
            raise ParameterError(
                f"unknown chaos strategy {self.kind!r}; "
                f"known: {', '.join(STRATEGY_KINDS)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ParameterError(
                f"strategy {self.kind!r} probability must be in [0, 1], "
                f"got {self.probability}"
            )
        if self.delay < 0:
            raise ParameterError(
                f"strategy {self.kind!r} delay must be >= 0, got {self.delay}"
            )
        if self.max_attempt is not None and (
            not isinstance(self.max_attempt, int) or self.max_attempt < 1
        ):
            raise ParameterError(
                f"strategy {self.kind!r} max_attempt must be a positive "
                f"int, got {self.max_attempt!r}"
            )

    def eligible(self, attempt: int) -> bool:
        return self.max_attempt is None or attempt < self.max_attempt

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"kind": self.kind, "probability": self.probability}
        if self.kind == "delay":
            out["delay"] = self.delay
        if self.max_attempt is not None:
            out["max_attempt"] = self.max_attempt
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultStrategy":
        if not isinstance(data, dict):
            raise ParameterError(
                f"chaos strategy must be an object, got {type(data).__name__}"
            )
        unknown = set(data) - {"kind", "probability", "delay", "max_attempt"}
        if unknown:
            raise ParameterError(
                f"unknown chaos strategy fields {sorted(unknown)}"
            )
        try:
            kind = data["kind"]
            probability = float(data["probability"])  # type: ignore[arg-type]
        except KeyError as exc:
            raise ParameterError(
                f"chaos strategy needs 'kind' and 'probability'; missing {exc}"
            ) from exc
        return cls(
            kind=str(kind),
            probability=probability,
            delay=float(data.get("delay", 0.25)),  # type: ignore[arg-type]
            max_attempt=(
                int(data["max_attempt"])  # type: ignore[arg-type]
                if data.get("max_attempt") is not None
                else None
            ),
        )


@dataclasses.dataclass(frozen=True)
class ChaosSpec:
    """A reproducible chaos campaign: a seed plus firing strategies.

    JSON-round-trippable (the ``--chaos`` / ``REPRO_CHAOS`` format):

    .. code-block:: json

        {"seed": 7,
         "strategies": [
             {"kind": "crash", "probability": 0.3, "max_attempt": 2},
             {"kind": "delay", "probability": 0.5, "delay": 0.1}]}
    """

    seed: int = 0
    strategies: Tuple[FaultStrategy, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) or self.seed < 0:
            raise ParameterError(
                f"chaos seed must be a non-negative int, got {self.seed!r}"
            )
        strategies = tuple(
            s if isinstance(s, FaultStrategy) else FaultStrategy.from_dict(s)
            for s in self.strategies
        )
        object.__setattr__(self, "strategies", strategies)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "strategies": [s.to_dict() for s in self.strategies],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChaosSpec":
        if not isinstance(data, dict):
            raise ParameterError(
                f"chaos spec must be an object, got {type(data).__name__}"
            )
        unknown = set(data) - {"seed", "strategies"}
        if unknown:
            raise ParameterError(f"unknown chaos spec fields {sorted(unknown)}")
        raw = data.get("strategies", ())
        if not isinstance(raw, Sequence) or isinstance(raw, str):
            raise ParameterError("chaos spec 'strategies' must be a list")
        return cls(
            seed=int(data.get("seed", 0)),  # type: ignore[arg-type]
            strategies=tuple(FaultStrategy.from_dict(s) for s in raw),  # type: ignore[arg-type]
        )

    def to_json(self, **dumps_kwargs: object) -> str:
        dumps_kwargs.setdefault("indent", 2)
        dumps_kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **dumps_kwargs)  # type: ignore[arg-type]

    @classmethod
    def from_json(cls, text: str) -> "ChaosSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ParameterError(f"chaos spec does not parse as JSON: {exc}") from exc
        return cls.from_dict(data)


@dataclasses.dataclass(frozen=True)
class Injection:
    """The strategies firing on one ``(unit, attempt)`` execution."""

    crash: bool = False
    delay: float = 0.0
    drop: bool = False
    partial: bool = False
    broken_pool: bool = False
    fired: Tuple[str, ...] = ()

    @property
    def any(self) -> bool:
        return bool(self.fired)


def _chaos_uniform(seed: int, strategy_index: int, unit_index: int, attempt: int) -> float:
    """The deterministic coin flip behind one strategy decision.

    Strategy decisions use the same ``SeedSequence`` addressing as the
    deployment streams but under the *chaos* seed, with the strategy
    index leading the key — so decisions are independent across
    strategies, units, and attempts, and identical for any worker
    count or scheduling order.
    """
    rng = np.random.default_rng(
        grid_seed_sequence(seed, strategy_index, unit_index, attempt)
    )
    return float(rng.random())


def corrupt_payload(payload: object, rng: np.random.Generator) -> object:
    """Deterministically damage a payload (the ``partial`` strategy).

    Arrays lose a random run of entries to garbage (simulating a
    truncated/bit-flipped shard in transit); other payloads are
    replaced outright.  The damage happens *after* the integrity
    checksum is computed, so the supervisor's validation must catch it.
    """
    if isinstance(payload, np.ndarray) and payload.size:
        damaged = np.array(payload, copy=True)
        flat = damaged.reshape(-1)
        start = int(rng.integers(0, flat.size))
        length = max(1, flat.size // 4)
        flat[start : start + length] = -1e301  # unmistakably garbage
        return damaged
    return None


class FailureInjector:
    """Middleware evaluating a :class:`ChaosSpec` around one execution.

    Stateless and cheap to construct — workers rebuild one per unit
    execution from the spec dict, so no state needs to survive process
    boundaries; determinism lives entirely in the seeded decisions.
    """

    def __init__(self, spec: ChaosSpec) -> None:
        self.spec = spec

    def plan(self, unit_index: int, attempt: int) -> Injection:
        """Decide which strategies fire for this ``(unit, attempt)``."""
        crash = broken = drop = partial = False
        delay = 0.0
        fired = []
        for si, strategy in enumerate(self.spec.strategies):
            if not strategy.eligible(attempt):
                continue
            if _chaos_uniform(self.spec.seed, si, unit_index, attempt) >= strategy.probability:
                continue
            fired.append(strategy.kind)
            if strategy.kind == "crash":
                crash = True
            elif strategy.kind == "delay":
                delay = max(delay, strategy.delay)
            elif strategy.kind == "drop":
                drop = True
            elif strategy.kind == "partial":
                partial = True
            elif strategy.kind == "broken_pool":
                broken = True
        return Injection(
            crash=crash,
            delay=delay,
            drop=drop,
            partial=partial,
            broken_pool=broken,
            fired=tuple(fired),
        )

    def apply_before(
        self, injection: Injection, unit_index: int, attempt: int, inline: bool
    ) -> None:
        """Fire pre-execution faults: straggle, die, or take the pool down.

        ``inline`` marks supervisor-process execution (``workers=1``):
        there a ``broken_pool`` hit degrades to a crash, because
        ``os._exit`` would kill the caller rather than a worker.
        """
        if injection.delay > 0:
            time.sleep(injection.delay)
        if injection.broken_pool and not inline:
            os._exit(13)  # simulate a worker dying mid-unit
        if injection.crash or (injection.broken_pool and inline):
            raise InjectedFailure(
                f"chaos crash injected into unit {unit_index} "
                f"(attempt {attempt})",
                unit_index,
                attempt,
            )

    def apply_after(
        self, injection: Injection, unit_index: int, attempt: int, payload: object
    ) -> Tuple[object, bool]:
        """Fire post-execution faults; returns ``(payload, dropped)``."""
        if injection.drop:
            return None, True
        if injection.partial:
            rng = np.random.default_rng(
                grid_seed_sequence(self.spec.seed, len(STRATEGY_KINDS), unit_index, attempt)
            )
            return corrupt_payload(payload, rng), False
        return payload, False


def load_chaos(source: Union[str, Dict[str, object], ChaosSpec, None]) -> Optional[ChaosSpec]:
    """Coerce a chaos source — spec, dict, inline JSON, or file path.

    The CLI's ``--chaos FILE_OR_SPEC`` contract: a string is treated as
    a path when a file exists there, otherwise parsed as inline JSON.
    """
    if source is None or isinstance(source, ChaosSpec):
        return source
    if isinstance(source, dict):
        return ChaosSpec.from_dict(source)
    text = source.strip()
    if not text:
        return None
    path = pathlib.Path(text)
    looks_inline = text.startswith("{") or text.startswith("[")
    if not looks_inline:
        if not path.exists():
            raise ParameterError(
                f"chaos spec file not found: {text!r} (pass a path or "
                "inline JSON like '{\"seed\": 7, \"strategies\": [...]}')"
            )
        return ChaosSpec.from_json(path.read_text())
    return ChaosSpec.from_json(text)


def chaos_from_env() -> Optional[ChaosSpec]:
    """The ambient chaos campaign: ``REPRO_CHAOS`` (path or inline JSON)."""
    return load_chaos(os.environ.get(CHAOS_ENV_VAR))
